// Ablation: score aggregation functions — the paper's future-work item
// ("some other ways to aggregate them", §4). Compares the paper's Eq. 1
// (mean) and Eq. 2 (max) with the quadratic mean (euclidean) and a
// privacy-tilted weighted mean on the Adult case, reporting the balance and
// multi-objective quality of the final populations.
//
// Expectation: max gives the most balanced front; euclidean sits between
// mean and max; weighted tilts the final cloud toward the cheap objective.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"
#include "experiments/pareto.h"
#include "experiments/report.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# Ablation: score aggregations on Adult (paper future work)\n");
  std::printf(
      "series,aggregation,il_weight,final_mean,final_balance,front_size,"
      "hypervolume\n");

  auto dataset_case = experiments::CaseByName("adult").ValueOrDie();
  struct Setting {
    metrics::ScoreAggregation aggregation;
    double il_weight;
  };
  const Setting settings[] = {
      {metrics::ScoreAggregation::kMean, 0.5},
      {metrics::ScoreAggregation::kMax, 0.5},
      {metrics::ScoreAggregation::kEuclidean, 0.5},
      {metrics::ScoreAggregation::kWeighted, 0.25},  // privacy-tilted
      {metrics::ScoreAggregation::kWeighted, 0.75},  // utility-tilted
  };
  for (const auto& setting : settings) {
    auto options =
        bench::BenchOptions(setting.aggregation, /*generations=*/800);
    options.fitness.il_weight = setting.il_weight;
    auto result = experiments::RunExperiment(dataset_case, options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto& experiment = result.ValueOrDie();
    auto pareto = experiments::AnalyzePareto(experiment.final_population);
    std::printf("aggregation,%s,%.2f,%.2f,%.2f,%zu,%.4f\n",
                metrics::ScoreAggregationToString(setting.aggregation),
                setting.il_weight, experiment.final_scores.mean,
                experiments::MeanImbalance(experiment.final_population),
                pareto.front.size(), pareto.hypervolume);
  }
  return 0;
}
