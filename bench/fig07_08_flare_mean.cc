// Reproduces Figures 7-8: Flare dataset, fitness Eq.1 (mean) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 7-8: Flare dataset, fitness Eq.1 (mean)";
  spec.dataset = "flare";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMean;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 42.53->33.56 (21.09%), mean 29.57->28.13 (4.87%), min no decrement";
  return evocat::bench::RunFigureBench(spec);
}
