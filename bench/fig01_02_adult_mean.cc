// Reproduces Figures 1-2: Adult dataset, fitness Eq.1 (mean) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 1-2: Adult dataset, fitness Eq.1 (mean)";
  spec.dataset = "adult";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMean;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 41.95->36.60 (12.75%), mean 33.05->31.78 (3.84%), min 29.68->29.61 (0.24%)";
  return evocat::bench::RunFigureBench(spec);
}
