// Ablation: operator mix. The paper fixes mutation/crossover at 0.5/0.5
// without justification; this bench compares mutation-only, crossover-only
// and the paper's mix on the Adult/Eq.2 experiment.
//
// Expectation: crossover drives the big early gains (recombining whole
// segments of good protections); mutation alone fine-tunes slowly; the mixed
// setting is competitive with crossover-only while retaining mutation's
// local-repair ability.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# Ablation: operator mix on Adult, Eq.2 (max)\n");
  std::printf(
      "series,mutation_rate,initial_mean,final_mean,mean_improve_pct,"
      "final_min,accepted_mutations,accepted_crossovers\n");

  auto dataset_case = experiments::CaseByName("adult").ValueOrDie();
  for (double rate : {1.0, 0.5, 0.0}) {
    auto options =
        bench::BenchOptions(metrics::ScoreAggregation::kMax, /*generations=*/1000);
    options.mutation_rate = rate;
    auto result = experiments::RunExperiment(dataset_case, options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto& experiment = result.ValueOrDie();
    double improve = experiments::ExperimentResult::ImprovementPercent(
        experiment.initial_scores.mean, experiment.final_scores.mean);
    std::printf("operators,%.1f,%.2f,%.2f,%.2f,%.2f,%lld,%lld\n", rate,
                experiment.initial_scores.mean, experiment.final_scores.mean,
                improve, experiment.final_scores.min,
                static_cast<long long>(experiment.stats.accepted_mutations),
                static_cast<long long>(experiment.stats.accepted_crossovers));
  }
  return 0;
}
