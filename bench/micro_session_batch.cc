// micro_session_batch — batch scheduling vs serial Session::Run.
//
// Scenario 1 (uniform): the same set of JobSpecs serially and as one batch,
// checking bit-identical results per job seed and printing the speedup.
//
// Scenario 2 (skewed): 1 heavy job (bigger file, full paper roster — the
// per-grid-point build and per-member evaluation dominate) + N light jobs,
// under both batch schedules. One-job-per-worker leaves the heavy job's
// inner loops serial on a single worker once the light jobs finish; work
// stealing splits them across the idle workers. Results must stay
// bit-identical between the two schedules; the wall-clock gap (and the
// steal counter) is the win. On a single hardware thread both degenerate
// to the same serial schedule (speedup ~1.0).
//
// Scenario 3 (--scale, gated): one 100k-record Adult-shaped job end to end,
// on the legacy row-oriented plane and on the packed + sharded data plane.
// The best individual must be bit-identical — the plane changes layout and
// parallelism, never results. --scale runs ONLY this scenario (scenarios 1
// and 2 are the default invocation; the scale CI job shouldn't repeat them).
//
// Writes every number to BENCH_session.json.

#include <cstdio>
#include <cstring>
#include <thread>

#include "api/session.h"
#include "bench_util.h"
#include "common/task_scheduler.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "datagen/profile.h"
#include "metrics/plane.h"

using namespace evocat;

namespace {

/// Fails the bench when any batch slot errored or differs from `reference`.
bool SameArtifacts(const std::vector<api::JobSpec>& jobs,
                   const std::vector<Result<api::RunArtifacts>>& batch,
                   const std::vector<api::RunArtifacts>& reference,
                   const char* label) {
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (!batch[i].ok()) {
      std::fprintf(stderr, "%s %s: %s\n", label, jobs[i].name.c_str(),
                   batch[i].status().ToString().c_str());
      return false;
    }
    if (!batch[i].ValueOrDie().best_data.SameCodes(reference[i].best_data)) {
      std::fprintf(stderr, "%s %s: result differs from reference run\n", label,
                   jobs[i].name.c_str());
      return false;
    }
  }
  return true;
}

/// Scenario 3: a 100k-record job end to end, legacy vs data plane. Returns
/// false on any job failure or a best-individual mismatch between planes.
bool RunScaleScenario(double* legacy_seconds, double* plane_seconds) {
  api::JobSpec big;
  big.name = "scale-100k";
  big.source.kind = api::SourceSpec::Kind::kSynthetic;
  big.source.has_inline_profile = true;
  big.source.profile = datagen::AdultProfile();
  big.source.profile.num_records = 100000;
  big.ga.generations = 10;
  big.seeds.master = 3000;
  big.outputs.initial_population = false;
  big.outputs.final_population = false;
  big.outputs.history = false;

  metrics::SetDataPlane(metrics::DataPlaneConfig{});
  api::Session legacy_session;
  Timer legacy_timer;
  auto legacy_run = legacy_session.Run(big);
  *legacy_seconds = legacy_timer.ElapsedSeconds();
  if (!legacy_run.ok()) {
    std::fprintf(stderr, "scale legacy: %s\n",
                 legacy_run.status().ToString().c_str());
    return false;
  }

  metrics::DataPlaneConfig plane;
  plane.sharded = true;
  plane.packed = true;
  metrics::SetDataPlane(plane);
  api::Session plane_session;
  Timer plane_timer;
  auto plane_run = plane_session.Run(big);
  *plane_seconds = plane_timer.ElapsedSeconds();
  metrics::SetDataPlane(metrics::DataPlaneConfig{});
  if (!plane_run.ok()) {
    std::fprintf(stderr, "scale plane: %s\n",
                 plane_run.status().ToString().c_str());
    return false;
  }
  if (!plane_run.ValueOrDie().best_data.SameCodes(
          legacy_run.ValueOrDie().best_data)) {
    std::fprintf(stderr,
                 "scale-100k: data-plane result differs from legacy run\n");
    return false;
  }
  std::printf(
      "scale-100k: legacy: %.2fs  packed+sharded: %.2fs  speedup: %.2fx "
      "(bit-identical)\n",
      *legacy_seconds, *plane_seconds,
      *plane_seconds > 0 ? *legacy_seconds / *plane_seconds : 0.0);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool scale = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) scale = true;
  }
  if (scale) {
    double legacy_seconds = 0.0, plane_seconds = 0.0;
    if (!RunScaleScenario(&legacy_seconds, &plane_seconds)) return 1;
    bench::JsonObject summary;
    summary.Add("scale_100k_legacy_seconds", legacy_seconds);
    summary.Add("scale_100k_plane_seconds", plane_seconds);
    summary.Add("scale_100k_speedup",
                plane_seconds > 0 ? legacy_seconds / plane_seconds : 0.0);
    Status status = bench::WriteJsonFile("BENCH_session.json", summary);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote BENCH_session.json\n");
    return 0;
  }
  // Small files with a long evolution: the GA loop is inherently serial per
  // job (one offspring at a time), which is exactly the regime where batch
  // execution pays — jobs spread across the pool instead of idling it.
  constexpr int kJobs = 6;
  constexpr int kGenerations = 400;
  std::vector<api::JobSpec> jobs;
  for (int i = 0; i < kJobs; ++i) {
    api::JobSpec spec;
    spec.name = "batch-" + std::to_string(i);
    spec.source.kind = api::SourceSpec::Kind::kSynthetic;
    spec.source.has_inline_profile = true;
    spec.source.profile =
        datagen::UniformTestProfile("tiny", 200, {9, 7, 11});
    spec.ga.generations = kGenerations;
    spec.seeds.master = 1000 + static_cast<uint64_t>(i);
    spec.outputs.initial_population = false;
    spec.outputs.final_population = false;
    spec.outputs.history = false;
    jobs.push_back(std::move(spec));
  }

  api::Session serial_session;
  Timer serial_timer;
  std::vector<api::RunArtifacts> serial;
  for (const auto& job : jobs) {
    auto run = serial_session.Run(job);
    if (!run.ok()) {
      std::fprintf(stderr, "serial %s: %s\n", job.name.c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    serial.push_back(std::move(run).ValueOrDie());
  }
  double serial_seconds = serial_timer.ElapsedSeconds();

  api::Session batch_session;
  Timer batch_timer;
  auto batch = batch_session.RunBatch(jobs);
  double batch_seconds = batch_timer.ElapsedSeconds();

  for (int i = 0; i < kJobs; ++i) {
    if (!batch[static_cast<size_t>(i)].ok()) {
      std::fprintf(stderr, "batch %s: %s\n", jobs[static_cast<size_t>(i)].name.c_str(),
                   batch[static_cast<size_t>(i)].status().ToString().c_str());
      return 1;
    }
    const auto& b = batch[static_cast<size_t>(i)].ValueOrDie();
    if (!b.best_data.SameCodes(serial[static_cast<size_t>(i)].best_data)) {
      std::fprintf(stderr, "job %d: batch result differs from serial run\n", i);
      return 1;
    }
  }

  double speedup = batch_seconds > 0 ? serial_seconds / batch_seconds : 0.0;
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("jobs=%d generations=%d hardware_threads=%d\n", kJobs,
              kGenerations, threads);
  std::printf("serial: %.2fs  batch: %.2fs  speedup: %.2fx (bit-identical; "
              "batch parallelism is bounded by hardware threads)\n",
              serial_seconds, batch_seconds, speedup);

  // --- Scenario 2: skewed batch, one-job-per-worker vs work stealing. ---
  // The heavy job runs the full default Adult roster (86 grid points) over a
  // bigger synthetic file; its seed-protection build and initial population
  // evaluation are the stealable phases. The light jobs finish first and
  // free their workers.
  std::vector<api::JobSpec> skewed;
  {
    api::JobSpec heavy;
    heavy.name = "skew-heavy";
    heavy.source.kind = api::SourceSpec::Kind::kSynthetic;
    heavy.source.has_inline_profile = true;
    heavy.source.profile =
        datagen::UniformTestProfile("skew-big", 700, {12, 9, 15});
    heavy.ga.generations = 60;
    heavy.seeds.master = 2000;
    heavy.outputs.initial_population = false;
    heavy.outputs.final_population = false;
    heavy.outputs.history = false;
    skewed.push_back(std::move(heavy));
    for (int i = 0; i < kJobs - 1; ++i) {
      api::JobSpec light;
      light.name = "skew-light-" + std::to_string(i);
      light.source.kind = api::SourceSpec::Kind::kSynthetic;
      light.source.has_inline_profile = true;
      light.source.profile =
          datagen::UniformTestProfile("skew-tiny", 150, {9, 7, 11});
      light.ga.generations = 150;
      light.seeds.master = 2100 + static_cast<uint64_t>(i);
      light.outputs.initial_population = false;
      light.outputs.final_population = false;
      light.outputs.history = false;
      skewed.push_back(std::move(light));
    }
  }

  // Reference artifacts (serial solo runs) for the parity check.
  api::Session skew_reference_session;
  std::vector<api::RunArtifacts> skew_reference;
  for (const auto& job : skewed) {
    auto run = skew_reference_session.Run(job);
    if (!run.ok()) {
      std::fprintf(stderr, "reference %s: %s\n", job.name.c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    skew_reference.push_back(std::move(run).ValueOrDie());
  }

  api::Session::BatchOptions one_per_worker;
  one_per_worker.work_stealing = false;
  api::Session legacy_session;
  Timer legacy_timer;
  auto legacy = legacy_session.RunBatch(skewed, one_per_worker);
  double legacy_seconds = legacy_timer.ElapsedSeconds();
  if (!SameArtifacts(skewed, legacy, skew_reference, "one-per-worker")) {
    return 1;
  }

  int64_t steals_before = TaskScheduler::Shared().steal_count();
  api::Session::BatchOptions stealing;
  stealing.work_stealing = true;
  api::Session stealing_session;
  Timer stealing_timer;
  auto stolen = stealing_session.RunBatch(skewed, stealing);
  double stealing_seconds = stealing_timer.ElapsedSeconds();
  int64_t steals =
      TaskScheduler::Shared().steal_count() - steals_before;
  if (!SameArtifacts(skewed, stolen, skew_reference, "work-stealing")) {
    return 1;
  }

  double skew_speedup =
      stealing_seconds > 0 ? legacy_seconds / stealing_seconds : 0.0;
  std::printf(
      "skewed (1 heavy + %d light): one-per-worker: %.2fs  "
      "work-stealing: %.2fs  speedup: %.2fx  stolen_subtasks: %lld "
      "(bit-identical)\n",
      kJobs - 1, legacy_seconds, stealing_seconds, skew_speedup,
      static_cast<long long>(steals));

  bench::JsonObject summary;
  summary.Add("jobs", static_cast<int64_t>(kJobs));
  summary.Add("hardware_threads", static_cast<int64_t>(threads));
  summary.Add("serial_seconds", serial_seconds);
  summary.Add("batch_seconds", batch_seconds);
  summary.Add("batch_speedup", speedup);
  summary.Add("skewed_one_per_worker_seconds", legacy_seconds);
  summary.Add("skewed_work_stealing_seconds", stealing_seconds);
  summary.Add("skewed_speedup", skew_speedup);
  summary.Add("skewed_stolen_subtasks", steals);
  // Telemetry-plane counters (fresh process: totals == this bench's runs).
  {
    const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    summary.Add("csv_cache_hits",
                registry.CounterValue("evocat_csv_cache_hits_total"));
    summary.Add("csv_cache_misses",
                registry.CounterValue("evocat_csv_cache_misses_total"));
    int64_t fallbacks = 0;
    for (const char* measure :
         {"ctbil", "dbil", "ebil", "id", "dbrl", "prl", "rsrl"}) {
      fallbacks += registry.CounterValue("evocat_rebuild_fallbacks_total",
                                         {{"measure", measure}});
    }
    summary.Add("rebuild_fallbacks", fallbacks);
    summary.Add("scheduler_steals",
                registry.CounterValue("evocat_scheduler_steals_total"));
  }
  Status status = bench::WriteJsonFile("BENCH_session.json", summary);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_session.json\n");
  return 0;
}
