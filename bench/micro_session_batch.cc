// micro_session_batch — Session::RunBatch vs serial Session::Run.
//
// Runs the same set of JobSpecs (paper Adult case, trimmed generation
// budget) serially and as one batch on the shared worker pool, checks the
// results are bit-identical per job seed, and prints both wall times plus
// the speedup. Appends the numbers to BENCH_session.json.

#include <cstdio>
#include <thread>

#include "api/session.h"
#include "bench_util.h"
#include "common/timer.h"
#include "datagen/profile.h"

using namespace evocat;

int main() {
  // Small files with a long evolution: the GA loop is inherently serial per
  // job (one offspring at a time), which is exactly the regime where batch
  // execution pays — jobs spread across the pool instead of idling it.
  constexpr int kJobs = 6;
  constexpr int kGenerations = 400;
  std::vector<api::JobSpec> jobs;
  for (int i = 0; i < kJobs; ++i) {
    api::JobSpec spec;
    spec.name = "batch-" + std::to_string(i);
    spec.source.kind = api::SourceSpec::Kind::kSynthetic;
    spec.source.has_inline_profile = true;
    spec.source.profile =
        datagen::UniformTestProfile("tiny", 200, {9, 7, 11});
    spec.ga.generations = kGenerations;
    spec.seeds.master = 1000 + static_cast<uint64_t>(i);
    spec.outputs.initial_population = false;
    spec.outputs.final_population = false;
    spec.outputs.history = false;
    jobs.push_back(std::move(spec));
  }

  api::Session serial_session;
  Timer serial_timer;
  std::vector<api::RunArtifacts> serial;
  for (const auto& job : jobs) {
    auto run = serial_session.Run(job);
    if (!run.ok()) {
      std::fprintf(stderr, "serial %s: %s\n", job.name.c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    serial.push_back(std::move(run).ValueOrDie());
  }
  double serial_seconds = serial_timer.ElapsedSeconds();

  api::Session batch_session;
  Timer batch_timer;
  auto batch = batch_session.RunBatch(jobs);
  double batch_seconds = batch_timer.ElapsedSeconds();

  for (int i = 0; i < kJobs; ++i) {
    if (!batch[static_cast<size_t>(i)].ok()) {
      std::fprintf(stderr, "batch %s: %s\n", jobs[static_cast<size_t>(i)].name.c_str(),
                   batch[static_cast<size_t>(i)].status().ToString().c_str());
      return 1;
    }
    const auto& b = batch[static_cast<size_t>(i)].ValueOrDie();
    if (!b.best_data.SameCodes(serial[static_cast<size_t>(i)].best_data)) {
      std::fprintf(stderr, "job %d: batch result differs from serial run\n", i);
      return 1;
    }
  }

  double speedup = batch_seconds > 0 ? serial_seconds / batch_seconds : 0.0;
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("jobs=%d generations=%d hardware_threads=%d\n", kJobs,
              kGenerations, threads);
  std::printf("serial: %.2fs  batch: %.2fs  speedup: %.2fx (bit-identical; "
              "batch parallelism is bounded by hardware threads)\n",
              serial_seconds, batch_seconds, speedup);

  bench::JsonObject summary;
  summary.Add("jobs", static_cast<int64_t>(kJobs));
  summary.Add("hardware_threads", static_cast<int64_t>(threads));
  summary.Add("serial_seconds", serial_seconds);
  summary.Add("batch_seconds", batch_seconds);
  summary.Add("batch_speedup", speedup);
  Status status = bench::WriteJsonFile("BENCH_session.json", summary);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_session.json\n");
  return 0;
}
