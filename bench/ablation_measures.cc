// Ablation: per-measure contribution to the fitness. Drops one IL or DR
// measure at a time from the aggregate (paper §4 notes the approach adapts
// to different measure sets) and reports where the Adult/Eq.2 optimization
// lands. Large shifts in the final (IL, DR) of the best individual reveal
// which measures anchor the score.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"

using namespace evocat;

namespace {

struct Variant {
  std::string name;
  metrics::FitnessEvaluator::Options options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"full", {}});
  metrics::FitnessEvaluator::Options options;
  options.use_ctbil = false;
  variants.push_back({"no_ctbil", options});
  options = {};
  options.use_dbil = false;
  variants.push_back({"no_dbil", options});
  options = {};
  options.use_ebil = false;
  variants.push_back({"no_ebil", options});
  options = {};
  options.use_id = false;
  variants.push_back({"no_id", options});
  options = {};
  options.use_dbrl = false;
  variants.push_back({"no_dbrl", options});
  options = {};
  options.use_prl = false;
  variants.push_back({"no_prl", options});
  options = {};
  options.use_rsrl = false;
  variants.push_back({"no_rsrl", options});
  return variants;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# Ablation: drop-one-measure fitness on Adult, Eq.2 (max)\n");
  std::printf("series,variant,final_min_score,best_il,best_dr\n");

  auto dataset_case = experiments::CaseByName("adult").ValueOrDie();
  for (const auto& variant : Variants()) {
    auto options =
        bench::BenchOptions(metrics::ScoreAggregation::kMax, /*generations=*/600);
    options.fitness = variant.options;
    auto result = experiments::RunExperiment(dataset_case, options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto& experiment = result.ValueOrDie();
    const auto& best = experiment.final_population.front();
    std::printf("measures,%s,%.2f,%.2f,%.2f\n", variant.name.c_str(),
                experiment.final_scores.min, best.il, best.dr);
  }
  std::printf("# note: scores across variants are not directly comparable "
              "(different aggregates); compare the (IL, DR) landing zones.\n");
  return 0;
}
