// Micro-benchmarks (google-benchmark) for the seven IL/DR measures and the
// whole fitness evaluation — the hot path the paper identifies as the
// dominant cost (>99% of generation time).

#include <benchmark/benchmark.h>

#include "datagen/generator.h"
#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/fitness.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"
#include "protection/pram.h"

namespace {

using namespace evocat;

struct Fixture {
  Dataset original;
  Dataset masked;
  std::vector<int> attrs;

  explicit Fixture(int64_t rows) {
    auto profile = datagen::AdultProfile();
    profile.num_records = rows;
    original = datagen::Generate(profile, 101).ValueOrDie();
    attrs = datagen::ProtectedAttributeIndices(profile, original).ValueOrDie();
    Rng rng(7);
    masked =
        protection::Pram(0.7).Protect(original, attrs, &rng).ValueOrDie();
  }
};

Fixture& SharedFixture(int64_t rows) {
  static auto* fixtures = new std::map<int64_t, Fixture*>();
  auto it = fixtures->find(rows);
  if (it == fixtures->end()) {
    it = fixtures->emplace(rows, new Fixture(rows)).first;
  }
  return *it->second;
}

template <typename MeasureT>
void BM_Measure(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state.range(0));
  MeasureT measure;
  auto bound =
      std::move(measure.Bind(fixture.original, fixture.attrs)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bound->Compute(fixture.masked));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FullFitness(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state.range(0));
  auto evaluator =
      std::move(metrics::FitnessEvaluator::Create(fixture.original, fixture.attrs))
          .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator->Evaluate(fixture.masked));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BindCost(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state.range(0));
  for (auto _ : state) {
    auto evaluator = std::move(metrics::FitnessEvaluator::Create(
                                   fixture.original, fixture.attrs))
                         .ValueOrDie();
    benchmark::DoNotOptimize(evaluator.get());
  }
}

// Linear-cost measures get more rows; quadratic linkage measures are pinned
// to the paper's file sizes (1000 records).
BENCHMARK_TEMPLATE(BM_Measure, metrics::CtbIl)->Arg(1000)->Arg(4000);
BENCHMARK_TEMPLATE(BM_Measure, metrics::DbIl)->Arg(1000)->Arg(4000);
BENCHMARK_TEMPLATE(BM_Measure, metrics::EbIl)->Arg(1000)->Arg(4000);
BENCHMARK_TEMPLATE(BM_Measure, metrics::IntervalDisclosure)->Arg(1000)->Arg(4000);
BENCHMARK_TEMPLATE(BM_Measure, metrics::DistanceBasedRecordLinkage)
    ->Arg(500)
    ->Arg(1000);
BENCHMARK_TEMPLATE(BM_Measure, metrics::ProbabilisticRecordLinkage)
    ->Arg(500)
    ->Arg(1000);
BENCHMARK_TEMPLATE(BM_Measure, metrics::RankSwappingRecordLinkage)
    ->Arg(500)
    ->Arg(1000);
BENCHMARK(BM_FullFitness)->Arg(1000);
BENCHMARK(BM_BindCost)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
