// Reproduces Figures 18+20: Flare, Eq.2 (max), best 10% removed of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 18+20: Flare, Eq.2 (max), best 10% removed";
  spec.dataset = "flare";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMax;
  spec.remove_best_fraction = 0.10;
  spec.generations = 2000;
  spec.paper_notes =
      "reaches min 32.71, 1.08 points above the full-population min (31.63)";
  return evocat::bench::RunFigureBench(spec);
}
