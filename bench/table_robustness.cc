// Reproduces the paper's §3.3 robustness result as a table: evolving the
// Flare population under Eq. 2 after removing the best 5% / 10% of the
// initial protections still reaches a min score close to the full-population
// run (paper: within 1.33 / 1.08 points).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# Robustness table (paper 3.3)\n");
  std::printf("# paper: full-population min 31.63; without best 5%%: 32.96 "
              "(gap 1.33); without best 10%%: 32.71 (gap 1.08)\n");
  std::printf(
      "series,removed_pct,initial_min,final_min,gap_to_full_run,paper_gap\n");

  auto dataset_case = experiments::CaseByName("flare").ValueOrDie();
  constexpr int kGenerations = 2000;

  double full_min = 0.0;
  const double paper_gaps[] = {0.0, 1.33, 1.08};
  const double fractions[] = {0.0, 0.05, 0.10};
  for (int i = 0; i < 3; ++i) {
    auto options =
        bench::BenchOptions(metrics::ScoreAggregation::kMax, kGenerations);
    options.remove_best_fraction = fractions[i];
    auto result = experiments::RunExperiment(dataset_case, options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto& experiment = result.ValueOrDie();
    if (i == 0) full_min = experiment.final_scores.min;
    std::printf("robustness,%.0f,%.2f,%.2f,%.2f,%.2f\n", fractions[i] * 100,
                experiment.initial_scores.min, experiment.final_scores.min,
                experiment.final_scores.min - full_min, paper_gaps[i]);
  }
  std::printf("# shape check: both reduced runs land within ~2 points of the "
              "full run's min (the GA recovers the removed elite).\n");
  return 0;
}
