// Micro-benchmark for the incremental (operator-delta) fitness evaluation
// subsystem, plus an engine-level before/after throughput comparison.
//
// Measures, on a >=1,000-record synthetic Adult file:
//   1. per-measure single-cell (mutation) re-evaluation: full Compute vs
//      MeasureState::ApplyDelta+Score, asserting the two scores agree to
//      1e-9 and reporting the speedup (target: >= 10x with DBRL enabled);
//   2. whole-fitness delta evaluation vs FitnessEvaluator::Evaluate;
//   3. crossover-heavy segment batches (the operator's own uniform 2-point
//      draw, averaging ~1/3 of the genome): the measure-owned cost model
//      (segment path) vs forcing every state to rebuild per batch, per
//      offspring evaluation + revert;
//   4. a 12-protected-attribute PRL file: the compressed pattern-histogram
//      delta path vs full Compute and vs a forced per-step rebuild (the
//      former >8-attribute fallback);
//   5. the GA engine run end to end with incremental_eval off vs on.
//
// Results are printed as CSV-ish lines and written machine-readably to
// BENCH_engine.json (override the path with EVOCAT_BENCH_JSON) so the perf
// trajectory is tracked across PRs.
//
// Usage: micro_delta_eval [--quick] [--scale] [rows] [engine_generations]
//   --quick shrinks every scenario for CI smoke jobs (and skips the hard
//   speedup gates, which assume benchmark-sized inputs).
//   --scale adds the 100k- and 1M-row data-plane scenarios (packed +
//   sharded vs legacy path, bit-exact scores, >= 3x at 1M).

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/packed_column.h"
#include "data/stats.h"
#include "obs/metrics.h"
#include "core/operators.h"
#include "datagen/generator.h"
#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/fitness.h"
#include "metrics/interval_disclosure.h"
#include "metrics/plane.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"
#include "protection/pram.h"

using namespace evocat;

namespace {

struct MutationStep {
  int64_t row;
  int attr;
  int32_t new_code;
};

/// Pre-drawn random single-cell mutations so both timing loops replay the
/// identical workload.
std::vector<MutationStep> DrawMutations(const Dataset& masked,
                                        const std::vector<int>& attrs,
                                        int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<MutationStep> steps;
  steps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    MutationStep step;
    step.row = static_cast<int64_t>(
        rng.UniformIndex(static_cast<size_t>(masked.num_rows())));
    step.attr = attrs[rng.UniformIndex(attrs.size())];
    int32_t card = masked.schema().attribute(step.attr).cardinality();
    step.new_code = static_cast<int32_t>(rng.UniformInt(0, card - 1));
    steps.push_back(step);
  }
  return steps;
}

struct MeasureTiming {
  double full_eval_seconds = 0.0;
  double delta_eval_seconds = 0.0;
  double speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// Times single-cell re-evaluation of one measure, full vs delta, over the
/// same mutation walk (each step: mutate, evaluate, undo).
MeasureTiming TimeMeasure(const metrics::BoundMeasure& bound, Dataset* masked,
                          const std::vector<MutationStep>& steps) {
  MeasureTiming timing;

  // Delta path (also records per-step full scores for the agreement check —
  // outside the timed sections).
  auto state = bound.BindState(*masked);
  {
    double elapsed = 0.0;
    for (const MutationStep& step : steps) {
      int32_t old_code = masked->Code(step.row, step.attr);
      masked->SetCode(step.row, step.attr, step.new_code);
      std::vector<metrics::CellDelta> deltas{
          {step.row, step.attr, old_code, step.new_code}};
      Timer timer;
      state->ApplyDelta(*masked, deltas);
      double delta_score = state->Score();
      elapsed += timer.ElapsedSeconds();
      double full_score = bound.Compute(*masked);
      timing.max_abs_diff =
          std::max(timing.max_abs_diff, std::fabs(delta_score - full_score));
      state->Revert();
      masked->SetCode(step.row, step.attr, old_code);
    }
    timing.delta_eval_seconds = elapsed / static_cast<double>(steps.size());
  }

  // Full path.
  {
    double elapsed = 0.0;
    for (const MutationStep& step : steps) {
      int32_t old_code = masked->Code(step.row, step.attr);
      masked->SetCode(step.row, step.attr, step.new_code);
      Timer timer;
      volatile double score = bound.Compute(*masked);
      elapsed += timer.ElapsedSeconds();
      (void)score;
      masked->SetCode(step.row, step.attr, old_code);
    }
    timing.full_eval_seconds = elapsed / static_cast<double>(steps.size());
  }

  timing.speedup = timing.delta_eval_seconds > 0
                       ? timing.full_eval_seconds / timing.delta_eval_seconds
                       : 0.0;
  return timing;
}

std::vector<std::pair<std::string, std::unique_ptr<metrics::Measure>>>
ScaleMeasures() {
  std::vector<std::pair<std::string, std::unique_ptr<metrics::Measure>>> m;
  m.emplace_back("CTBIL", std::make_unique<metrics::CtbIl>(2));
  m.emplace_back("DBIL", std::make_unique<metrics::DbIl>());
  m.emplace_back("EBIL", std::make_unique<metrics::EbIl>());
  m.emplace_back("ID", std::make_unique<metrics::IntervalDisclosure>(10.0));
  m.emplace_back("DBRL",
                 std::make_unique<metrics::DistanceBasedRecordLinkage>());
  m.emplace_back("PRL",
                 std::make_unique<metrics::ProbabilisticRecordLinkage>(25));
  m.emplace_back("RSRL",
                 std::make_unique<metrics::RankSwappingRecordLinkage>(15.0));
  return m;
}

struct ScaleResult {
  bench::JsonObject json;
  /// Aggregate old/new speedup over all seven measures — every measure now
  /// carries a clustered delta path on the sharded plane (RSRL's landed
  /// last, so it additionally gets its own gate).
  double speedup = 0.0;
  double rsrl_speedup = 0.0;
  double max_abs_diff = 0.0;
};

/// The scale scenario: the same single-cell mutation walk timed on the
/// legacy row-oriented plane (the oracle path) and on the packed + sharded
/// plane, measure by measure. Scores must agree *exactly* (diff == 0) —
/// the plane is a layout/parallelism change, not a numeric one.
ScaleResult RunScaleScenario(int64_t rows, int num_steps) {
  auto profile = datagen::AdultProfile();
  profile.num_records = rows;
  Dataset original = datagen::Generate(profile, 404).ValueOrDie();
  auto attrs =
      datagen::ProtectedAttributeIndices(profile, original).ValueOrDie();
  Rng rng(405);
  Dataset masked =
      protection::Pram(0.5).Protect(original, attrs, &rng).ValueOrDie();
  auto steps = DrawMutations(masked, attrs, num_steps, 0x5CA1E);

  metrics::DataPlaneConfig old_plane;  // legacy row-oriented path
  metrics::DataPlaneConfig new_plane;
  new_plane.sharded = true;
  new_plane.packed = true;

  /// Times apply + score + revert over the walk under the given plane and
  /// collects the per-step scores.
  auto run_path = [&](const metrics::Measure& measure,
                      const metrics::DataPlaneConfig& plane,
                      std::vector<double>* scores) {
    metrics::SetDataPlane(plane);
    auto bound = std::move(measure.Bind(original, attrs)).ValueOrDie();
    auto state = bound->BindState(masked);
    double elapsed = 0.0;
    for (const MutationStep& step : steps) {
      int32_t old_code = masked.Code(step.row, step.attr);
      masked.SetCode(step.row, step.attr, step.new_code);
      std::vector<metrics::CellDelta> deltas{
          {step.row, step.attr, old_code, step.new_code}};
      Timer timer;
      state->ApplyDelta(masked, deltas);
      scores->push_back(state->Score());
      state->Revert();
      elapsed += timer.ElapsedSeconds();
      masked.SetCode(step.row, step.attr, old_code);
    }
    return elapsed / static_cast<double>(steps.size());
  };

  ScaleResult result;
  std::printf("# scale scenario: rows=%lld\n", static_cast<long long>(rows));
  std::printf("scale_measure,old_ms,new_ms,speedup,max_abs_diff\n");
  bench::JsonObject measures_json;
  double old_total = 0.0, new_total = 0.0;
  for (const auto& [name, measure] : ScaleMeasures()) {
    std::vector<double> old_scores, new_scores;
    double old_s = run_path(*measure, old_plane, &old_scores);
    double new_s = run_path(*measure, new_plane, &new_scores);
    double diff = 0.0;
    for (size_t i = 0; i < old_scores.size(); ++i) {
      diff = std::max(diff, std::fabs(old_scores[i] - new_scores[i]));
    }
    result.max_abs_diff = std::max(result.max_abs_diff, diff);
    old_total += old_s;
    new_total += new_s;
    double speedup = new_s > 0 ? old_s / new_s : 0.0;
    if (name == "RSRL") result.rsrl_speedup = speedup;
    std::printf("%s,%.4f,%.4f,%.1fx,%.3g\n", name.c_str(), old_s * 1e3,
                new_s * 1e3, speedup, diff);
    bench::JsonObject one;
    one.Add("old_eval_seconds", old_s)
        .Add("new_eval_seconds", new_s)
        .Add("speedup", speedup)
        .Add("max_abs_diff", diff);
    measures_json.Add(name, one);
  }
  metrics::SetDataPlane(metrics::DataPlaneConfig{});
  result.speedup = new_total > 0 ? old_total / new_total : 0.0;
  std::printf("scale_aggregate,rows=%lld,old_ms=%.3f,new_ms=%.3f,"
              "speedup=%.2fx,max_abs_diff=%.3g\n",
              static_cast<long long>(rows), old_total * 1e3, new_total * 1e3,
              result.speedup, result.max_abs_diff);
  result.json.Add("rows", rows)
      .Add("measures", measures_json)
      .Add("old_eval_seconds", old_total)
      .Add("new_eval_seconds", new_total)
      .Add("speedup", result.speedup)
      .Add("max_abs_diff", result.max_abs_diff);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  bool quick = false;
  bool scale = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else if (std::string(argv[i]) == "--scale") {
      scale = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  int64_t rows = !positional.empty() ? std::atoll(positional[0])
                                     : (quick ? 300 : 1000);
  int engine_generations =
      positional.size() > 1 ? std::atoi(positional[1]) : (quick ? 30 : 150);

  auto profile = datagen::AdultProfile();
  profile.num_records = rows;
  Dataset original = datagen::Generate(profile, 101).ValueOrDie();
  auto attrs =
      datagen::ProtectedAttributeIndices(profile, original).ValueOrDie();
  Rng rng(7);
  Dataset masked =
      protection::Pram(0.7).Protect(original, attrs, &rng).ValueOrDie();

  std::printf("# micro_delta_eval: rows=%lld protected_attrs=%zu\n",
              static_cast<long long>(rows), attrs.size());
  std::printf("measure,full_ms,delta_ms,speedup,max_abs_diff\n");

  struct NamedMeasure {
    std::string name;
    std::unique_ptr<metrics::Measure> measure;
  };
  std::vector<NamedMeasure> measures;
  measures.push_back({"CTBIL", std::make_unique<metrics::CtbIl>(2)});
  measures.push_back({"DBIL", std::make_unique<metrics::DbIl>()});
  measures.push_back({"EBIL", std::make_unique<metrics::EbIl>()});
  measures.push_back({"ID", std::make_unique<metrics::IntervalDisclosure>(10.0)});
  measures.push_back(
      {"DBRL", std::make_unique<metrics::DistanceBasedRecordLinkage>()});
  measures.push_back(
      {"PRL", std::make_unique<metrics::ProbabilisticRecordLinkage>(50)});
  measures.push_back(
      {"RSRL", std::make_unique<metrics::RankSwappingRecordLinkage>(15.0)});

  const int kSteps = quick ? 16 : 40;
  auto steps = DrawMutations(masked, attrs, kSteps, 0xD17A);

  bench::JsonObject measures_json;
  bool all_within_tolerance = true;
  double dbrl_speedup = 0.0;
  for (const auto& [name, measure] : measures) {
    auto bound = std::move(measure->Bind(original, attrs)).ValueOrDie();
    MeasureTiming timing = TimeMeasure(*bound, &masked, steps);
    std::printf("%s,%.4f,%.4f,%.1fx,%.3g\n", name.c_str(),
                timing.full_eval_seconds * 1e3, timing.delta_eval_seconds * 1e3,
                timing.speedup, timing.max_abs_diff);
    bench::JsonObject one;
    one.Add("full_eval_seconds", timing.full_eval_seconds)
        .Add("delta_eval_seconds", timing.delta_eval_seconds)
        .Add("speedup", timing.speedup)
        .Add("max_abs_diff", timing.max_abs_diff);
    measures_json.Add(name, one);
    all_within_tolerance = all_within_tolerance && timing.max_abs_diff <= 1e-9;
    if (name == "DBRL") dbrl_speedup = timing.speedup;
  }

  // Whole-fitness comparison (all seven measures enabled).
  auto evaluator =
      std::move(metrics::FitnessEvaluator::Create(original, attrs)).ValueOrDie();
  double fitness_full_s = 0.0, fitness_delta_s = 0.0, fitness_diff = 0.0;
  {
    auto state = evaluator->BindState(masked);
    for (const MutationStep& step : steps) {
      int32_t old_code = masked.Code(step.row, step.attr);
      masked.SetCode(step.row, step.attr, step.new_code);
      std::vector<metrics::CellDelta> deltas{
          {step.row, step.attr, old_code, step.new_code}};
      Timer delta_timer;
      state->ApplyDelta(masked, deltas);
      double delta_score = state->breakdown().score;
      fitness_delta_s += delta_timer.ElapsedSeconds();
      Timer full_timer;
      double full_score = evaluator->Evaluate(masked).score;
      fitness_full_s += full_timer.ElapsedSeconds();
      fitness_diff = std::max(fitness_diff, std::fabs(delta_score - full_score));
      state->Revert();
      masked.SetCode(step.row, step.attr, old_code);
    }
    fitness_full_s /= kSteps;
    fitness_delta_s /= kSteps;
  }
  double fitness_speedup =
      fitness_delta_s > 0 ? fitness_full_s / fitness_delta_s : 0.0;
  std::printf("FITNESS,%.4f,%.4f,%.1fx,%.3g\n", fitness_full_s * 1e3,
              fitness_delta_s * 1e3, fitness_speedup, fitness_diff);

  // Crossover-heavy scenario: the paper operator's own segment
  // distribution — s and r drawn uniformly over the flat genome (inclusive
  // [s, r], averaging ~1/3 of it) — evaluated per offspring as apply +
  // revert, the engine's reject path. "Segment path" = the measure-owned
  // cost model (small and mid legs update incrementally, outsized ones
  // rebuild exactly the measures whose threshold they cross); "rebuild
  // path" = every state forced to recompute per batch (the pre-cost-model
  // behaviour for rebuild-sized legs). Both routes share the per-measure
  // concurrency, so the comparison isolates the cost model itself.
  double seg_new_s = 0.0, seg_old_s = 0.0, seg_diff = 0.0;
  int64_t seg_cells = 0;
  const int kSegments = quick ? 4 : 10;
  {
    Rng donor_rng(0xC407);
    Dataset donor =
        protection::Pram(0.5).Protect(original, attrs, &donor_rng).ValueOrDie();
    metrics::FitnessEvaluator::Options cliff_options;
    cliff_options.delta_rebuild_fraction = 0.01;
    auto cliff_evaluator = std::move(metrics::FitnessEvaluator::Create(
                                         original, attrs, cliff_options))
                               .ValueOrDie();
    auto segment_state = evaluator->BindState(masked);
    auto rebuild_state = cliff_evaluator->BindState(masked);
    core::GenomeLayout layout(attrs, rows);
    int64_t genome = layout.Length();
    Rng seg_rng(0x5E67);
    for (int step = 0; step < kSegments; ++step) {
      auto s = static_cast<int64_t>(seg_rng.UniformInt(0, genome - 1));
      auto r = static_cast<int64_t>(seg_rng.UniformInt(s, genome - 1));
      auto segment = core::CrossoverSegmentSwap(layout, donor, &masked, s, r);
      seg_cells += segment.num_cells();
      Timer new_timer;
      segment_state->ApplyDelta(masked, segment);
      double new_score = segment_state->breakdown().score;
      segment_state->Revert();
      seg_new_s += new_timer.ElapsedSeconds();
      Timer old_timer;
      rebuild_state->ApplyDelta(masked, segment);
      double old_score = rebuild_state->breakdown().score;
      rebuild_state->Revert();
      seg_old_s += old_timer.ElapsedSeconds();
      seg_diff = std::max(seg_diff, std::fabs(new_score - old_score));
      const auto& cells = segment.cells();
      for (auto it = cells.rbegin(); it != cells.rend(); ++it) {
        masked.SetCode(it->row, it->attr, it->old_code);
      }
    }
    seg_new_s /= kSegments;
    seg_old_s /= kSegments;
  }
  double seg_speedup = seg_new_s > 0 ? seg_old_s / seg_new_s : 0.0;
  std::printf(
      "crossover_segment,cells_per_batch=%lld,rebuild_ms=%.3f,"
      "segment_ms=%.3f,speedup=%.2fx,max_abs_diff=%.3g\n",
      static_cast<long long>(seg_cells / kSegments), seg_old_s * 1e3,
      seg_new_s * 1e3, seg_speedup, seg_diff);

  // Wide-pattern PRL scenario: 12 protected attributes (2^12 pattern space,
  // beyond the former dense 8-attribute limit). Single-cell delta vs full
  // Compute and vs a forced per-step rebuild.
  double prl_full_s = 0.0, prl_delta_s = 0.0, prl_rebuild_s = 0.0;
  double prl_diff = 0.0;
  int64_t prl_rows = quick ? 150 : 500;
  {
    auto prl_profile = datagen::UniformTestProfile(
        "prl12", prl_rows, std::vector<int>(12, 4));
    Dataset prl_original = datagen::Generate(prl_profile, 977).ValueOrDie();
    auto prl_attrs =
        datagen::ProtectedAttributeIndices(prl_profile, prl_original)
            .ValueOrDie();
    Rng prl_rng(978);
    Dataset prl_masked = protection::Pram(0.7)
                             .Protect(prl_original, prl_attrs, &prl_rng)
                             .ValueOrDie();
    metrics::ProbabilisticRecordLinkage prl(quick ? 10 : 25);
    auto bound = std::move(prl.Bind(prl_original, prl_attrs)).ValueOrDie();
    auto delta_state = bound->BindState(prl_masked);
    auto rebuild_state = bound->BindState(prl_masked);
    rebuild_state->set_full_rebuild_threshold(1);
    const int kPrlSteps = quick ? 6 : 15;
    auto prl_steps = DrawMutations(prl_masked, prl_attrs, kPrlSteps, 0x12A7);
    for (const MutationStep& step : prl_steps) {
      int32_t old_code = prl_masked.Code(step.row, step.attr);
      prl_masked.SetCode(step.row, step.attr, step.new_code);
      std::vector<metrics::CellDelta> deltas{
          {step.row, step.attr, old_code, step.new_code}};
      Timer delta_timer;
      delta_state->ApplyDelta(prl_masked, deltas);
      double delta_score = delta_state->Score();
      delta_state->Revert();
      prl_delta_s += delta_timer.ElapsedSeconds();
      Timer rebuild_timer;
      rebuild_state->ApplyDelta(prl_masked, deltas);
      double rebuild_score = rebuild_state->Score();
      rebuild_state->Revert();
      prl_rebuild_s += rebuild_timer.ElapsedSeconds();
      Timer full_timer;
      double full_score = bound->Compute(prl_masked);
      prl_full_s += full_timer.ElapsedSeconds();
      prl_diff = std::max(prl_diff, std::fabs(delta_score - full_score));
      prl_diff = std::max(prl_diff, std::fabs(rebuild_score - full_score));
      prl_masked.SetCode(step.row, step.attr, old_code);
    }
    prl_full_s /= kPrlSteps;
    prl_delta_s /= kPrlSteps;
    prl_rebuild_s /= kPrlSteps;
  }
  double prl_vs_full = prl_delta_s > 0 ? prl_full_s / prl_delta_s : 0.0;
  double prl_vs_rebuild = prl_delta_s > 0 ? prl_rebuild_s / prl_delta_s : 0.0;
  std::printf(
      "prl_wide,attrs=12,rows=%lld,full_ms=%.3f,rebuild_ms=%.3f,"
      "delta_ms=%.3f,speedup_vs_full=%.1fx,speedup_vs_rebuild=%.1fx,"
      "max_abs_diff=%.3g\n",
      static_cast<long long>(prl_rows), prl_full_s * 1e3, prl_rebuild_s * 1e3,
      prl_delta_s * 1e3, prl_vs_full, prl_vs_rebuild, prl_diff);

  // Word-walk contingency kernel: AccumulateRangePacked (block word decode +
  // dense mixed-radix accumulation) against the per-value scalar decode +
  // hash-map insert it replaced, on a CTBIL-shaped attribute pair. Counts
  // are integers, so the two cell maps must be identical.
  double kernel_scalar_s = 1e100, kernel_walk_s = 1e100;
  bool kernel_cells_equal = true;
  int64_t kernel_rows = quick ? 200000 : 2000000;
  {
    Rng kernel_rng(0xB17);
    std::vector<int32_t> cards{16, 14};
    std::vector<PackedColumn> packed;
    for (int32_t card : cards) {
      std::vector<int32_t> codes;
      codes.reserve(static_cast<size_t>(kernel_rows));
      for (int64_t r = 0; r < kernel_rows; ++r) {
        codes.push_back(static_cast<int32_t>(kernel_rng.UniformInt(0, card - 1)));
      }
      packed.push_back(PackedColumn::Pack(codes, card));
    }
    std::vector<const PackedColumn*> cols{&packed[0], &packed[1]};
    std::unordered_map<uint64_t, int64_t> walk_cells, scalar_cells;
    const int kKernelReps = 3;
    for (int rep = 0; rep < kKernelReps; ++rep) {
      std::unordered_map<uint64_t, int64_t> cells;
      Timer timer;
      ContingencyTable::AccumulateRangePacked(cols, 0, kernel_rows, &cells);
      kernel_walk_s = std::min(kernel_walk_s, timer.ElapsedSeconds());
      walk_cells = std::move(cells);
    }
    for (int rep = 0; rep < kKernelReps; ++rep) {
      std::unordered_map<uint64_t, int64_t> cells;
      Timer timer;
      for (int64_t r = 0; r < kernel_rows; ++r) {
        uint64_t key =
            static_cast<uint64_t>(static_cast<uint32_t>(packed[0].Get(r))) &
            0xFFFFu;
        key |= (static_cast<uint64_t>(static_cast<uint32_t>(packed[1].Get(r))) &
                0xFFFFu)
               << 16;
        ++cells[key];
      }
      kernel_scalar_s = std::min(kernel_scalar_s, timer.ElapsedSeconds());
      scalar_cells = std::move(cells);
    }
    kernel_cells_equal = walk_cells == scalar_cells;
  }
  double kernel_speedup =
      kernel_walk_s > 0 ? kernel_scalar_s / kernel_walk_s : 0.0;
  std::printf(
      "ctbil_kernel,rows=%lld,scalar_ms=%.3f,word_walk_ms=%.3f,"
      "speedup=%.2fx,simd=%d,cells_equal=%d\n",
      static_cast<long long>(kernel_rows), kernel_scalar_s * 1e3,
      kernel_walk_s * 1e3, kernel_speedup,
      PackedColumn::SimdEnabled() ? 1 : 0, kernel_cells_equal ? 1 : 0);

  // Engine before/after: identical seeds and generation budget, incremental
  // evaluation off vs on.
  auto dataset_case = experiments::AdultCase();
  dataset_case.profile.num_records = rows;
  auto options = bench::BenchOptions(metrics::ScoreAggregation::kMean,
                                     engine_generations);
  options.incremental_eval = false;
  auto full_run =
      std::move(experiments::RunExperiment(dataset_case, options)).ValueOrDie();
  options.incremental_eval = true;
  auto delta_run =
      std::move(experiments::RunExperiment(dataset_case, options)).ValueOrDie();

  auto gens_per_sec = [](const experiments::ExperimentResult& result) {
    double seconds = result.stats.mutation_total_seconds +
                     result.stats.crossover_total_seconds;
    return seconds > 0 ? static_cast<double>(result.history.size()) / seconds
                       : 0.0;
  };
  double engine_speedup = gens_per_sec(full_run) > 0
                              ? gens_per_sec(delta_run) / gens_per_sec(full_run)
                              : 0.0;
  std::printf("engine,full_gens_per_sec=%.2f,delta_gens_per_sec=%.2f,"
              "speedup=%.1fx,final_min_full=%.4f,final_min_delta=%.4f\n",
              gens_per_sec(full_run), gens_per_sec(delta_run), engine_speedup,
              full_run.final_scores.min, delta_run.final_scores.min);

  bench::JsonObject json;
  json.Add("bench", std::string("micro_delta_eval"))
      .Add("dataset", dataset_case.profile.name)
      .Add("rows", rows)
      .Add("protected_attrs", static_cast<int64_t>(attrs.size()));
  bench::JsonObject fitness_json;
  fitness_json.Add("full_eval_seconds", fitness_full_s)
      .Add("delta_eval_seconds", fitness_delta_s)
      .Add("speedup", fitness_speedup)
      .Add("max_abs_diff", fitness_diff);
  bench::JsonObject segment_json;
  segment_json.Add("rebuild_eval_seconds", seg_old_s)
      .Add("segment_eval_seconds", seg_new_s)
      .Add("speedup", seg_speedup)
      .Add("max_abs_diff", seg_diff);
  bench::JsonObject prl_wide_json;
  prl_wide_json.Add("attrs", static_cast<int64_t>(12))
      .Add("rows", prl_rows)
      .Add("full_eval_seconds", prl_full_s)
      .Add("rebuild_eval_seconds", prl_rebuild_s)
      .Add("delta_eval_seconds", prl_delta_s)
      .Add("speedup_vs_full", prl_vs_full)
      .Add("speedup_vs_rebuild", prl_vs_rebuild)
      .Add("max_abs_diff", prl_diff);
  bench::JsonObject kernel_json;
  kernel_json.Add("rows", kernel_rows)
      .Add("scalar_seconds", kernel_scalar_s)
      .Add("word_walk_seconds", kernel_walk_s)
      .Add("speedup", kernel_speedup)
      .Add("simd", static_cast<int64_t>(PackedColumn::SimdEnabled() ? 1 : 0))
      .Add("cells_equal", static_cast<int64_t>(kernel_cells_equal ? 1 : 0));
  json.Add("measures", measures_json)
      .Add("fitness", fitness_json)
      .Add("crossover_segment", segment_json)
      .Add("prl_wide", prl_wide_json)
      .Add("ctbil_kernel", kernel_json)
      .Add("engine_full", bench::EngineThroughputJson(full_run))
      .Add("engine_incremental", bench::EngineThroughputJson(delta_run))
      .Add("engine_speedup", engine_speedup);

  // Process-wide telemetry counters (fresh process, so totals == this run):
  // delta traffic plus the per-measure rebuild fallbacks that the cost model
  // is supposed to keep rare.
  {
    const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    bench::JsonObject counters_json;
    counters_json
        .Add("delta_applies",
             registry.CounterValue("evocat_delta_applies_total"))
        .Add("delta_reverts",
             registry.CounterValue("evocat_delta_reverts_total"));
    int64_t fallbacks = 0;
    bench::JsonObject fallback_json;
    for (const char* measure :
         {"ctbil", "dbil", "ebil", "id", "dbrl", "prl", "rsrl"}) {
      int64_t value = registry.CounterValue("evocat_rebuild_fallbacks_total",
                                            {{"measure", measure}});
      fallback_json.Add(measure, value);
      fallbacks += value;
    }
    counters_json.Add("rebuild_fallbacks_total", fallbacks)
        .Add("rebuild_fallbacks", fallback_json);
    // Delta-plane kernel telemetry: word traffic of the packed bulk kernels,
    // which decode path served them, and the PRL EM warm-start hit rate.
    counters_json
        .Add("delta_plane_words_scanned",
             registry.CounterValue("evocat_delta_plane_words_scanned_total"))
        .Add("delta_plane_kernel_calls_simd",
             registry.CounterValue("evocat_delta_plane_kernel_calls_total",
                                   {{"path", "simd"}}))
        .Add("delta_plane_kernel_calls_scalar",
             registry.CounterValue("evocat_delta_plane_kernel_calls_total",
                                   {{"path", "scalar"}}))
        .Add("em_warm_hits",
             registry.CounterValue("evocat_delta_plane_em_warm_hits_total"))
        .Add("em_cold_starts",
             registry.CounterValue("evocat_delta_plane_em_cold_starts_total"));
    json.Add("counters", counters_json);
  }

  // Gated 100k- and 1M-row scenarios: the packed + sharded plane against
  // the legacy path, bit-exact scores required.
  ScaleResult scale_100k, scale_1m;
  if (scale) {
    scale_100k = RunScaleScenario(100000, quick ? 6 : 12);
    scale_1m = RunScaleScenario(1000000, quick ? 4 : 8);
    json.Add("scale_100k", scale_100k.json).Add("scale_1m", scale_1m.json);
  }

  const char* json_path = std::getenv("EVOCAT_BENCH_JSON");
  std::string path = json_path != nullptr ? json_path : "BENCH_engine.json";
  Status status = bench::WriteJsonFile(path, json);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("# json written to %s\n", path.c_str());

  if (!all_within_tolerance || fitness_diff > 1e-9 || seg_diff > 1e-9 ||
      prl_diff > 1e-9) {
    std::fprintf(stderr, "FAIL: delta/full disagreement above 1e-9\n");
    return 1;
  }
  if (!kernel_cells_equal) {
    std::fprintf(stderr,
                 "FAIL: word-walk contingency kernel disagrees with the "
                 "scalar decode\n");
    return 1;
  }
  if (!quick && kernel_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: word-walk contingency kernel %.2fx below the 3x "
                 "target vs scalar decode\n",
                 kernel_speedup);
    return 1;
  }
  if (!quick && rows >= 1000) {
    if (dbrl_speedup < 10.0) {
      std::fprintf(stderr, "FAIL: DBRL delta speedup %.1fx below 10x target\n",
                   dbrl_speedup);
      return 1;
    }
    if (seg_speedup < 1.0) {
      std::fprintf(stderr,
                   "FAIL: crossover segment path %.2fx slower than the "
                   "full-rebuild path\n",
                   seg_speedup);
      return 1;
    }
    if (prl_vs_rebuild < 1.0) {
      std::fprintf(stderr,
                   "FAIL: 12-attribute PRL delta path %.2fx slower than the "
                   "full-rebuild path\n",
                   prl_vs_rebuild);
      return 1;
    }
  }
  if (scale) {
    if (scale_100k.max_abs_diff != 0.0 || scale_1m.max_abs_diff != 0.0) {
      std::fprintf(stderr,
                   "FAIL: packed+sharded plane diverged from the oracle "
                   "(100k diff %.3g, 1M diff %.3g) — must be exactly 0\n",
                   scale_100k.max_abs_diff, scale_1m.max_abs_diff);
      return 1;
    }
    if (!quick && scale_1m.speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: 1M-row packed+sharded delta eval %.2fx below the "
                   "3x target\n",
                   scale_1m.speedup);
      return 1;
    }
    if (!quick && scale_1m.rsrl_speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: 1M-row clustered RSRL delta eval %.2fx below the "
                   "2x target\n",
                   scale_1m.rsrl_speedup);
      return 1;
    }
  }
  std::printf("# OK\n");
  return 0;
}
