// Reproduces Figures 15-16: Flare dataset, fitness Eq.2 (max) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 15-16: Flare dataset, fitness Eq.2 (max)";
  spec.dataset = "flare";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMax;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 76.17->50.22 (34.07%), mean 44.83->36.36 (18.89%), min 31.77->31.63 (0.44%)";
  return evocat::bench::RunFigureBench(spec);
}
