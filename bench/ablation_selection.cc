// Ablation: parent-selection strategies (DESIGN.md §2's Eq. 3 discussion).
//
// The paper's Eq. 3 literally favours HIGH (bad) scores; its text describes
// the opposite. This bench runs the Flare/Eq.2 experiment under four
// strategies — inverse-score (our default, the described behaviour), the
// literal Eq. 3, linear rank, and uniform — and compares the optimization
// each achieves. Expectation: inverse/rank clearly beat literal/uniform on
// mean-score improvement, supporting the bug-fix reading of Eq. 3.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/logging.h"

using namespace evocat;

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# Ablation: selection strategies on Flare, Eq.2 (max)\n");
  std::printf(
      "series,strategy,initial_mean,final_mean,mean_improve_pct,final_min,"
      "final_max\n");

  auto dataset_case = experiments::CaseByName("flare").ValueOrDie();
  const core::SelectionStrategy strategies[] = {
      core::SelectionStrategy::kInverseScore,
      core::SelectionStrategy::kLiteralScore,
      core::SelectionStrategy::kRank,
      core::SelectionStrategy::kUniform,
  };
  for (auto strategy : strategies) {
    auto options =
        bench::BenchOptions(metrics::ScoreAggregation::kMax, /*generations=*/1000);
    options.selection = strategy;
    auto result = experiments::RunExperiment(dataset_case, options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto& experiment = result.ValueOrDie();
    double improve = experiments::ExperimentResult::ImprovementPercent(
        experiment.initial_scores.mean, experiment.final_scores.mean);
    std::printf("selection,%s,%.2f,%.2f,%.2f,%.2f,%.2f\n",
                core::SelectionStrategyToString(strategy),
                experiment.initial_scores.mean, experiment.final_scores.mean,
                improve, experiment.final_scores.min,
                experiment.final_scores.max);
  }
  return 0;
}
