// Consolidated paper-vs-measured table for every improvement percentage the
// paper quotes in §3.1 (fitness Eq. 1) and §3.2 (fitness Eq. 2): the max,
// mean and min population scores before and after evolution, for all four
// datasets. This is the single bench to read for the headline reproduction.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"

using namespace evocat;

namespace {

struct PaperRow {
  const char* dataset;
  metrics::ScoreAggregation aggregation;
  // Paper start/end values for max/mean/min (NaN-free; "no decrement" rows
  // repeat the start value).
  double max_start, max_end;
  double mean_start, mean_end;
  double min_start, min_end;
};

const std::vector<PaperRow>& PaperRows() {
  static const auto* rows = new std::vector<PaperRow>{
      {"adult", metrics::ScoreAggregation::kMean, 41.95, 36.60, 33.05, 31.78,
       29.68, 29.61},
      {"housing", metrics::ScoreAggregation::kMean, 36.96, 36.14, 29.79, 25.25,
       20.36, 20.12},
      {"german", metrics::ScoreAggregation::kMean, 36.59, 31.74, 29.37, 28.91,
       26.68, 26.54},
      {"flare", metrics::ScoreAggregation::kMean, 42.53, 33.56, 29.57, 28.13,
       31.77, 31.77},
      {"adult", metrics::ScoreAggregation::kMax, 72.19, 64.38, 47.05, 38.57,
       30.70, 30.28},
      {"housing", metrics::ScoreAggregation::kMax, 72.65, 69.63, 42.32, 30.12,
       29.18, 29.18},
      {"german", metrics::ScoreAggregation::kMax, 65.87, 44.85, 40.76, 33.42,
       29.18, 28.05},
      {"flare", metrics::ScoreAggregation::kMax, 76.17, 50.22, 44.83, 36.36,
       31.77, 31.63},
  };
  return *rows;
}

double Improvement(double start, double end) {
  return start > 0 ? 100.0 * (start - end) / start : 0.0;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# Improvement table: paper 3.1/3.2 in-text percentages vs "
              "measured (synthetic stand-in data; compare shapes, not "
              "absolutes)\n");
  std::printf(
      "series,dataset,aggregation,stat,paper_start,paper_end,paper_improve_pct,"
      "measured_start,measured_end,measured_improve_pct\n");

  for (const auto& row : PaperRows()) {
    auto dataset_case = experiments::CaseByName(row.dataset).ValueOrDie();
    auto options = bench::BenchOptions(row.aggregation, /*generations=*/2000);
    auto result = experiments::RunExperiment(dataset_case, options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    const auto& experiment = result.ValueOrDie();
    const char* aggregation =
        metrics::ScoreAggregationToString(row.aggregation);
    auto print_stat = [&](const char* stat, double paper_start,
                          double paper_end, double measured_start,
                          double measured_end) {
      std::printf("improvement,%s,%s,%s,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
                  row.dataset, aggregation, stat, paper_start, paper_end,
                  Improvement(paper_start, paper_end), measured_start,
                  measured_end, Improvement(measured_start, measured_end));
    };
    print_stat("max", row.max_start, row.max_end,
               experiment.initial_scores.max, experiment.final_scores.max);
    print_stat("mean", row.mean_start, row.mean_end,
               experiment.initial_scores.mean, experiment.final_scores.mean);
    print_stat("min", row.min_start, row.min_end,
               experiment.initial_scores.min, experiment.final_scores.min);
  }
  std::printf("# shape checks: mean improves steadily in all rows; min barely "
              "moves; Eq.2 mean improvements exceed Eq.1's.\n");
  return 0;
}
