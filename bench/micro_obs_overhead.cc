// micro_obs_overhead — the telemetry plane's overhead gate.
//
// Runs the same GA workload with the metrics registry + trace spans fully
// enabled and fully disabled, min-of-N wall clock each way, and:
//   1. proves the best individual is bit-identical (telemetry observes,
//      never steers — the same oracle the tests enforce, at bench scale),
//   2. gates the enabled/disabled overhead below 2%.
// Writes both timings and the relative overhead to BENCH_obs.json; a gate
// breach exits non-zero so CI fails loudly instead of silently regressing.

#include <cstdio>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_util.h"
#include "common/timer.h"
#include "datagen/profile.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace evocat;

namespace {

constexpr int kReps = 9;
constexpr double kMaxOverhead = 0.02;  // 2% gate (BENCH_obs.json `overhead`)

api::JobSpec Workload() {
  api::JobSpec spec;
  spec.name = "obs-overhead";
  spec.source.kind = api::SourceSpec::Kind::kSynthetic;
  spec.source.has_inline_profile = true;
  spec.source.profile = datagen::UniformTestProfile("obs", 300, {9, 7, 11, 5});
  spec.ga.generations = 400;
  spec.seeds.master = 4242;
  spec.outputs.initial_population = false;
  spec.outputs.final_population = false;
  spec.outputs.history = false;
  spec.outputs.telemetry = true;
  return spec;
}

/// One timed run in the given configuration; returns wall seconds into
/// `*seconds` and the artifacts into `*out`.
bool OneRun(bool enabled, double* seconds, api::RunArtifacts* out) {
  obs::SetMetricsEnabled(enabled);
  if (enabled) {
    obs::EnableTracing();
  } else {
    obs::DisableTracing();
  }
  api::Session session;  // fresh session: no CSV cache carry-over
  Timer timer;
  auto run = session.Run(Workload());
  *seconds = timer.ElapsedSeconds();
  obs::DisableTracing();
  obs::SetMetricsEnabled(true);
  if (!run.ok()) {
    std::fprintf(stderr, "run (enabled=%d): %s\n", enabled,
                 run.status().ToString().c_str());
    return false;
  }
  *out = std::move(run).ValueOrDie();
  return true;
}

}  // namespace

int main() {
  // Alternate the order-sensitive warmup away: one throwaway run first so
  // the first timed configuration doesn't absorb all the cold-start cost.
  {
    api::Session session;
    auto warmup = session.Run(Workload());
    if (!warmup.ok()) {
      std::fprintf(stderr, "warmup: %s\n", warmup.status().ToString().c_str());
      return 1;
    }
  }

  // Interleave off/on pairs so clock drift, thermal throttling and noisy
  // neighbours hit both configurations equally; compare min-of-reps. A
  // sequential off-block-then-on-block design measured ±10% machine noise
  // on this sub-second workload — interleaving is what makes a 2% gate
  // meaningful at all.
  double off_seconds = 0.0, on_seconds = 0.0;
  api::RunArtifacts off, on;
  for (int rep = 0; rep < kReps; ++rep) {
    double off_rep = 0.0, on_rep = 0.0;
    if (!OneRun(false, &off_rep, &off)) return 1;
    if (!OneRun(true, &on_rep, &on)) return 1;
    if (rep == 0 || off_rep < off_seconds) off_seconds = off_rep;
    if (rep == 0 || on_rep < on_seconds) on_seconds = on_rep;
  }

  if (!on.best_data.SameCodes(off.best_data)) {
    std::fprintf(stderr,
                 "telemetry-enabled run differs from disabled run — the "
                 "telemetry plane is NOT observation-only\n");
    return 1;
  }
  if (off.best.fitness.score != on.best.fitness.score) {
    std::fprintf(stderr, "best score differs: off=%.17g on=%.17g\n",
                 off.best.fitness.score, on.best.fitness.score);
    return 1;
  }

  double overhead =
      off_seconds > 0 ? (on_seconds - off_seconds) / off_seconds : 0.0;
  std::printf("disabled: %.3fs  enabled: %.3fs  overhead: %.2f%% "
              "(min of %d reps, bit-identical)\n",
              off_seconds, on_seconds, overhead * 100.0, kReps);

  // Counter sanity: the enabled runs must have actually counted.
  const obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  int64_t generations = registry.CounterValue(
      "evocat_engine_generations_total", {{"op", "mutation"}});
  generations += registry.CounterValue("evocat_engine_generations_total",
                                       {{"op", "crossover"}});
  int64_t applies = registry.CounterValue("evocat_delta_applies_total");
  std::printf("counted: %lld generations, %lld delta applies\n",
              static_cast<long long>(generations),
              static_cast<long long>(applies));

  bench::JsonObject summary;
  summary.Add("reps", static_cast<int64_t>(kReps));
  summary.Add("disabled_seconds", off_seconds);
  summary.Add("enabled_seconds", on_seconds);
  summary.Add("overhead", overhead);
  summary.Add("overhead_gate", kMaxOverhead);
  summary.Add("bit_identical", std::string("true"));
  summary.Add("generations_counted", generations);
  summary.Add("delta_applies_counted", applies);
  Status status = bench::WriteJsonFile("BENCH_obs.json", summary);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_obs.json\n");

  if (generations <= 0 || applies <= 0) {
    std::fprintf(stderr, "enabled run registered no counts — instrumentation "
                         "is not wired\n");
    return 1;
  }
  if (overhead > kMaxOverhead) {
    std::fprintf(stderr, "overhead %.2f%% exceeds the %.0f%% gate\n",
                 overhead * 100.0, kMaxOverhead * 100.0);
    return 1;
  }
  return 0;
}
