#include "bench_util.h"

#include <cstdio>
#include <fstream>
#include <iostream>

#include <cstdlib>

#include "common/logging.h"
#include "common/string_utils.h"
#include "common/timer.h"
#include "experiments/pareto.h"
#include "experiments/report.h"
#include "experiments/svg_plot.h"

namespace evocat {
namespace bench {

experiments::ExperimentOptions BenchOptions(metrics::ScoreAggregation aggregation,
                                            int generations) {
  experiments::ExperimentOptions options;
  options.aggregation = aggregation;
  options.generations = generations;
  // Fixed seeds: every bench run regenerates identical series.
  options.data_seed = 0xDA7A;
  options.protection_seed = 0x9A5C;
  options.ga_seed = 42;
  return options;
}

namespace {

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonObject& JsonObject::Add(const std::string& key, double value) {
  // Round-trip precision: the tracked metrics must reflect sub-1e-9 score
  // differences across PRs.
  entries_.emplace_back(key, StrFormat("%.17g", value));
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, int64_t value) {
  entries_.emplace_back(key, StrFormat("%lld", static_cast<long long>(value)));
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + EscapeJson(value) + "\"");
  return *this;
}

JsonObject& JsonObject::Add(const std::string& key, const JsonObject& object) {
  entries_.emplace_back(key, object.ToString(/*indent=*/1));
  return *this;
}

std::string JsonObject::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string inner_pad = pad + "  ";
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n");
    out += inner_pad + "\"" + EscapeJson(entries_[i].first) +
           "\": " + entries_[i].second;
  }
  out += "\n" + pad + "}";
  return out;
}

Status WriteJsonFile(const std::string& path, const JsonObject& object) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open '", path, "' for writing");
  }
  out << object.ToString() << "\n";
  out.close();  // surface buffered write errors before reporting success
  return out.fail() ? Status::Internal("short write to '", path, "'")
                    : Status::OK();
}

JsonObject EngineThroughputJson(const experiments::ExperimentResult& result) {
  const auto& stats = result.stats;
  int64_t generations = static_cast<int64_t>(result.history.size());
  double gen_seconds =
      stats.mutation_total_seconds + stats.crossover_total_seconds;
  double eval_seconds =
      stats.mutation_eval_seconds + stats.crossover_eval_seconds;
  JsonObject json;
  json.Add("generations", generations)
      .Add("offspring_evaluated", stats.offspring_evaluated)
      .Add("generations_per_sec",
           gen_seconds > 0 ? static_cast<double>(generations) / gen_seconds : 0.0)
      .Add("evaluations_per_sec",
           eval_seconds > 0
               ? static_cast<double>(stats.offspring_evaluated) / eval_seconds
               : 0.0)
      .Add("initial_eval_seconds", stats.initial_eval_seconds)
      .Add("mutation_eval_seconds", stats.mutation_eval_seconds)
      .Add("crossover_eval_seconds", stats.crossover_eval_seconds)
      .Add("total_seconds", stats.total_seconds)
      .Add("final_min_score", result.final_scores.min)
      .Add("final_mean_score", result.final_scores.mean);
  return json;
}

int RunFigureBench(const FigureSpec& spec) {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# %s\n", spec.title.c_str());
  std::printf("# dataset=%s aggregation=%s generations=%d", spec.dataset.c_str(),
              metrics::ScoreAggregationToString(spec.aggregation),
              spec.generations);
  if (spec.remove_best_fraction > 0) {
    std::printf(" remove_best=%.0f%%", spec.remove_best_fraction * 100);
  }
  std::printf("\n");
  if (!spec.paper_notes.empty()) {
    std::printf("# paper: %s\n", spec.paper_notes.c_str());
  }

  auto dataset_case = experiments::CaseByName(spec.dataset);
  if (!dataset_case.ok()) {
    std::cerr << dataset_case.status().ToString() << "\n";
    return 1;
  }
  auto options = BenchOptions(spec.aggregation, spec.generations);
  options.remove_best_fraction = spec.remove_best_fraction;

  Timer timer;
  auto result = experiments::RunExperiment(dataset_case.ValueOrDie(), options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const auto& experiment = result.ValueOrDie();

  experiments::PrintDispersionCsv(experiment, std::cout);
  experiments::PrintEvolutionCsv(experiment, std::cout);
  std::printf("# measured:\n");
  experiments::PrintImprovementSummary(experiment, std::cout);

  // Multi-objective view of the dispersion clouds: the final front should
  // dominate more area than the initial one.
  auto initial_pareto = experiments::AnalyzePareto(experiment.initial);
  auto final_pareto = experiments::AnalyzePareto(experiment.final_population);
  std::printf("pareto,initial,front=%zu,hypervolume=%.4f\n",
              initial_pareto.front.size(), initial_pareto.hypervolume);
  std::printf("pareto,final,front=%zu,hypervolume=%.4f\n",
              final_pareto.front.size(), final_pareto.hypervolume);

  // Optional: render the actual figures (paper-style SVGs).
  if (const char* svg_dir = std::getenv("EVOCAT_SVG_DIR")) {
    std::string stem = spec.dataset + "_" +
                       metrics::ScoreAggregationToString(spec.aggregation);
    if (spec.remove_best_fraction > 0) {
      stem += StrFormat("_rob%.0f", spec.remove_best_fraction * 100);
    }
    Status svg_status = experiments::WriteFigureSvgs(experiment, spec.title,
                                                     svg_dir, stem);
    if (!svg_status.ok()) {
      std::cerr << svg_status.ToString() << "\n";
    } else {
      std::printf("# svg figures written to %s/%s_*.svg\n", svg_dir,
                  stem.c_str());
    }
  }

  std::printf("# wall_time_s=%.2f\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace bench
}  // namespace evocat
