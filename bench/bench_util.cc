#include "bench_util.h"

#include <cstdio>
#include <iostream>

#include <cstdlib>

#include "common/logging.h"
#include "common/string_utils.h"
#include "common/timer.h"
#include "experiments/pareto.h"
#include "experiments/report.h"
#include "experiments/svg_plot.h"

namespace evocat {
namespace bench {

experiments::ExperimentOptions BenchOptions(metrics::ScoreAggregation aggregation,
                                            int generations) {
  experiments::ExperimentOptions options;
  options.aggregation = aggregation;
  options.generations = generations;
  // Fixed seeds: every bench run regenerates identical series.
  options.data_seed = 0xDA7A;
  options.protection_seed = 0x9A5C;
  options.ga_seed = 42;
  return options;
}

int RunFigureBench(const FigureSpec& spec) {
  SetLogLevel(LogLevel::kWarning);
  std::printf("# %s\n", spec.title.c_str());
  std::printf("# dataset=%s aggregation=%s generations=%d", spec.dataset.c_str(),
              metrics::ScoreAggregationToString(spec.aggregation),
              spec.generations);
  if (spec.remove_best_fraction > 0) {
    std::printf(" remove_best=%.0f%%", spec.remove_best_fraction * 100);
  }
  std::printf("\n");
  if (!spec.paper_notes.empty()) {
    std::printf("# paper: %s\n", spec.paper_notes.c_str());
  }

  auto dataset_case = experiments::CaseByName(spec.dataset);
  if (!dataset_case.ok()) {
    std::cerr << dataset_case.status().ToString() << "\n";
    return 1;
  }
  auto options = BenchOptions(spec.aggregation, spec.generations);
  options.remove_best_fraction = spec.remove_best_fraction;

  Timer timer;
  auto result = experiments::RunExperiment(dataset_case.ValueOrDie(), options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const auto& experiment = result.ValueOrDie();

  experiments::PrintDispersionCsv(experiment, std::cout);
  experiments::PrintEvolutionCsv(experiment, std::cout);
  std::printf("# measured:\n");
  experiments::PrintImprovementSummary(experiment, std::cout);

  // Multi-objective view of the dispersion clouds: the final front should
  // dominate more area than the initial one.
  auto initial_pareto = experiments::AnalyzePareto(experiment.initial);
  auto final_pareto = experiments::AnalyzePareto(experiment.final_population);
  std::printf("pareto,initial,front=%zu,hypervolume=%.4f\n",
              initial_pareto.front.size(), initial_pareto.hypervolume);
  std::printf("pareto,final,front=%zu,hypervolume=%.4f\n",
              final_pareto.front.size(), final_pareto.hypervolume);

  // Optional: render the actual figures (paper-style SVGs).
  if (const char* svg_dir = std::getenv("EVOCAT_SVG_DIR")) {
    std::string stem = spec.dataset + "_" +
                       metrics::ScoreAggregationToString(spec.aggregation);
    if (spec.remove_best_fraction > 0) {
      stem += StrFormat("_rob%.0f", spec.remove_best_fraction * 100);
    }
    Status svg_status = experiments::WriteFigureSvgs(experiment, spec.title,
                                                     svg_dir, stem);
    if (!svg_status.ok()) {
      std::cerr << svg_status.ToString() << "\n";
    } else {
      std::printf("# svg figures written to %s/%s_*.svg\n", svg_dir,
                  stem.c_str());
    }
  }

  std::printf("# wall_time_s=%.2f\n", timer.ElapsedSeconds());
  return 0;
}

}  // namespace bench
}  // namespace evocat
