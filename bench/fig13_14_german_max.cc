// Reproduces Figures 13-14: German dataset, fitness Eq.2 (max) of Marés & Torra, PAIS/EDBT 2012.
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for results.

#include "bench_util.h"

int main() {
  evocat::bench::FigureSpec spec;
  spec.title = "Figures 13-14: German dataset, fitness Eq.2 (max)";
  spec.dataset = "german";
  spec.aggregation = evocat::metrics::ScoreAggregation::kMax;
  spec.remove_best_fraction = 0.0;
  spec.generations = 2000;
  spec.paper_notes =
      "max 65.87->44.85 (31.91%), mean 40.76->33.42 (18.01%), min 29.18->28.05 (3.87%)";
  return evocat::bench::RunFigureBench(spec);
}
