// micro_strategies — evolution-strategy throughput and convergence.
//
// Runs the same job under the three registered strategies (generational,
// steady_state lambda=8, islands 4x ring) on two scenarios:
//
//   uniform: flat marginals, uncorrelated attributes — the easy landscape;
//   skewed:  zipf-heavy marginals with latent correlation — the landscape
//            the paper's datasets actually look like.
//
// For each (scenario, strategy) pair it reports wall seconds, generations
// executed (summed across islands), generations/sec, fitness evaluations
// served, and the best score reached — i.e. both the throughput axis and
// the best-fitness-vs-evaluations axis. Every strategy is also run twice
// to confirm determinism (bit-identical best files), which is a hard
// failure when violated.
//
// The islands strategy evolves its 4 subpopulations concurrently on the
// worker pool, so its generations/sec approaches 4x generational on >= 4
// hardware threads; on a single hardware thread all strategies degenerate
// to the same serial schedule (speedup ~1.0).
//
// Writes every number to BENCH_strategies.json. `--quick` shrinks the
// generation budget for CI smoke runs.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "bench_util.h"
#include "common/timer.h"
#include "datagen/profile.h"

using namespace evocat;

namespace {

struct StrategyRun {
  std::string label;
  api::StrategySpec strategy;
};

struct Measured {
  /// Whole-job wall time (source + seed protections + evolution).
  double job_seconds = 0.0;
  /// Evolution-only wall time — the fair basis for generations/sec (the
  /// seeding stages are identical across strategies).
  double evolve_seconds = 0.0;
  int64_t generations = 0;
  double generations_per_sec = 0.0;
  int64_t evaluations = 0;
  double best_score = 0.0;
};

datagen::SyntheticProfile SkewedProfile(int64_t records) {
  auto profile = datagen::UniformTestProfile("skewed", records, {12, 9, 15});
  for (auto& attr : profile.attributes) {
    attr.zipf_s = 1.1;
    attr.latent_weight = 0.5;
  }
  return profile;
}

/// Runs one (scenario, strategy) pair twice; fails (nullptr artifacts) on
/// error or on a determinism violation between the two runs.
bool RunPair(api::Session* session, const api::JobSpec& base,
             const StrategyRun& run, Measured* out) {
  api::JobSpec spec = base;
  spec.name = base.name + "-" + run.label;
  spec.strategy = run.strategy;

  Timer timer;
  auto first = session->Run(spec);
  double seconds = timer.ElapsedSeconds();
  if (!first.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                 first.status().ToString().c_str());
    return false;
  }
  auto second = session->Run(spec);
  if (!second.ok()) {
    std::fprintf(stderr, "%s (rerun): %s\n", spec.name.c_str(),
                 second.status().ToString().c_str());
    return false;
  }
  const api::RunArtifacts& a = first.ValueOrDie();
  const api::RunArtifacts& b = second.ValueOrDie();
  if (!a.best_data.SameCodes(b.best_data)) {
    std::fprintf(stderr, "%s: NOT deterministic across reruns\n",
                 spec.name.c_str());
    return false;
  }

  out->job_seconds = seconds;
  out->evolve_seconds = a.stats.total_seconds;
  out->generations =
      a.stats.mutation_generations + a.stats.crossover_generations;
  out->generations_per_sec =
      out->evolve_seconds > 0
          ? static_cast<double>(out->generations) / out->evolve_seconds
          : 0.0;
  out->evaluations = a.evaluations;
  out->best_score = a.best.fitness.score;
  return true;
}

bench::JsonObject MeasuredJson(const Measured& m) {
  bench::JsonObject json;
  json.Add("job_seconds", m.job_seconds);
  json.Add("evolve_seconds", m.evolve_seconds);
  json.Add("generations", m.generations);
  json.Add("generations_per_sec", m.generations_per_sec);
  json.Add("evaluations", m.evaluations);
  json.Add("best_score", m.best_score);
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int generations = quick ? 40 : 300;
  const int64_t records = quick ? 150 : 400;
  const int threads = static_cast<int>(std::thread::hardware_concurrency());

  std::vector<StrategyRun> runs(3);
  runs[0].label = "generational";
  runs[0].strategy.name = "generational";
  runs[1].label = "steady_state";
  runs[1].strategy.name = "steady_state";
  runs[1].strategy.params = {{"lambda", "8"}};
  runs[2].label = "islands";
  runs[2].strategy.name = "islands";
  runs[2].strategy.params = {{"islands", "4"},
                             {"migration_interval",
                              std::to_string(std::max(1, generations / 8))}};

  struct Scenario {
    std::string name;
    datagen::SyntheticProfile profile;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"uniform", datagen::UniformTestProfile("uniform", records, {9, 7, 11})});
  scenarios.push_back({"skewed", SkewedProfile(records)});

  api::Session session;
  bench::JsonObject summary;
  summary.Add("hardware_threads", static_cast<int64_t>(threads));
  summary.Add("quick", static_cast<int64_t>(quick ? 1 : 0));
  summary.Add("generations_budget", static_cast<int64_t>(generations));

  std::printf("strategies bench: %d generations/island, %lld records, "
              "%d hardware threads\n",
              generations, static_cast<long long>(records), threads);

  for (const Scenario& scenario : scenarios) {
    api::JobSpec base;
    base.name = scenario.name;
    base.source.kind = api::SourceSpec::Kind::kSynthetic;
    base.source.has_inline_profile = true;
    base.source.profile = scenario.profile;
    base.ga.generations = generations;
    base.seeds.master = 1234;
    base.outputs.initial_population = false;
    base.outputs.final_population = false;
    base.outputs.history = false;

    bench::JsonObject scenario_json;
    double generational_gps = 0.0;
    double islands_gps = 0.0;
    std::printf("--- scenario: %s ---\n", scenario.name.c_str());
    for (const StrategyRun& run : runs) {
      Measured measured;
      if (!RunPair(&session, base, run, &measured)) return 1;
      std::printf("%-13s %6.2fs  %5lld gens  %7.1f gens/s  %6lld evals  "
                  "best=%.3f\n",
                  run.label.c_str(), measured.evolve_seconds,
                  static_cast<long long>(measured.generations),
                  measured.generations_per_sec,
                  static_cast<long long>(measured.evaluations),
                  measured.best_score);
      scenario_json.Add(run.label, MeasuredJson(measured));
      if (run.label == "generational") {
        generational_gps = measured.generations_per_sec;
      }
      if (run.label == "islands") islands_gps = measured.generations_per_sec;
    }
    double speedup =
        generational_gps > 0 ? islands_gps / generational_gps : 0.0;
    scenario_json.Add("islands_speedup_vs_generational", speedup);
    std::printf("islands generations/sec speedup vs generational: %.2fx%s\n",
                speedup,
                threads < 4 ? "  (bounded by hardware threads; expect >=2x "
                              "with 4+ cores)"
                            : "");
    summary.Add(scenario.name, scenario_json);
  }

  Status status = bench::WriteJsonFile("BENCH_strategies.json", summary);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_strategies.json\n");
  return 0;
}
