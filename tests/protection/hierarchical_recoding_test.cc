#include "protection/hierarchical_recoding.h"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "datagen/generator.h"

namespace evocat {
namespace protection {
namespace {

using evocat::testing::BuildDataset;
using evocat::testing::CountDiffs;
using evocat::testing::TestAttr;

Dataset TestData() {
  auto profile = datagen::UniformTestProfile("h", 150, {16, 9, 5});
  profile.attributes[0].kind = AttrKind::kOrdinal;
  return datagen::Generate(profile, 31).ValueOrDie();
}

TEST(HierarchicalRecodingTest, LevelOneMergesAdjacentPairs) {
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 8}},
                                  {{0}, {1}, {2}, {3}, {6}, {7}});
  Rng rng(1);
  Dataset masked = HierarchicalRecoding(1, 2)
                       .Protect(original, {0}, &rng)
                       .ValueOrDie();
  // Level-1 groups {0,1}{2,3}{4,5}{6,7}; representative = lower member.
  EXPECT_EQ(masked.Code(0, 0), masked.Code(1, 0));
  EXPECT_EQ(masked.Code(2, 0), masked.Code(3, 0));
  EXPECT_EQ(masked.Code(4, 0), masked.Code(5, 0));
  EXPECT_NE(masked.Code(0, 0), masked.Code(2, 0));
}

TEST(HierarchicalRecodingTest, DeepLevelCollapsesToOneCategory) {
  Dataset original = TestData();
  Rng rng(1);
  Dataset masked = HierarchicalRecoding(10, 2)
                       .Protect(original, {0, 1, 2}, &rng)
                       .ValueOrDie();
  for (int attr : {0, 1, 2}) {
    std::set<int32_t> distinct(masked.column(attr).begin(),
                               masked.column(attr).end());
    EXPECT_EQ(distinct.size(), 1u) << "attr " << attr;
  }
}

TEST(HierarchicalRecodingTest, DeeperLevelsCoarsen) {
  Dataset original = TestData();
  Rng rng1(1), rng2(1);
  Dataset level1 = HierarchicalRecoding(1, 2)
                       .Protect(original, {0}, &rng1)
                       .ValueOrDie();
  Dataset level3 = HierarchicalRecoding(3, 2)
                       .Protect(original, {0}, &rng2)
                       .ValueOrDie();
  auto distinct = [](const Dataset& dataset) {
    return std::set<int32_t>(dataset.column(0).begin(),
                             dataset.column(0).end())
        .size();
  };
  EXPECT_GT(distinct(level1), distinct(level3));
  EXPECT_LE(CountDiffs(original, level1, {0}),
            CountDiffs(original, level3, {0}));
}

TEST(HierarchicalRecodingTest, DomainClosedAndGlobal) {
  Dataset original = TestData();
  Rng rng(1);
  Dataset masked = HierarchicalRecoding(2, 3)
                       .Protect(original, {0, 1, 2}, &rng)
                       .ValueOrDie();
  EXPECT_TRUE(masked.Validate().ok());
  // Global: equal originals map to equal masked values.
  for (int attr : {0, 1, 2}) {
    std::vector<int32_t> mapping(
        static_cast<size_t>(original.schema().attribute(attr).cardinality()),
        -1);
    for (int64_t r = 0; r < original.num_rows(); ++r) {
      auto orig = static_cast<size_t>(original.Code(r, attr));
      if (mapping[orig] < 0) {
        mapping[orig] = masked.Code(r, attr);
      } else {
        EXPECT_EQ(mapping[orig], masked.Code(r, attr));
      }
    }
  }
}

TEST(HierarchicalRecodingTest, RejectsBadParameters) {
  Dataset original = TestData();
  Rng rng(1);
  EXPECT_FALSE(HierarchicalRecoding(0, 2).Protect(original, {0}, &rng).ok());
  EXPECT_FALSE(HierarchicalRecoding(1, 1).Protect(original, {0}, &rng).ok());
}

TEST(HierarchicalRecodingTest, LabelEncodesParameters) {
  HierarchicalRecoding method(2, 3);
  EXPECT_EQ(method.Label(), "hierarchicalrecoding(level=2,fanout=3)");
}

}  // namespace
}  // namespace protection
}  // namespace evocat
