// Per-method behavioural tests for the six masking methods, plus a
// parameterized property suite (domain closure, determinism, shape) that
// sweeps every method the population builder can instantiate.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "data/stats.h"
#include "datagen/generator.h"
#include "protection/coding.h"
#include "protection/global_recoding.h"
#include "protection/microaggregation.h"
#include "protection/population_builder.h"
#include "protection/pram.h"
#include "protection/rank_swapping.h"

namespace evocat {
namespace protection {
namespace {

using evocat::testing::AllAttrs;
using evocat::testing::BuildDataset;
using evocat::testing::CountDiffs;
using evocat::testing::TestAttr;

Dataset PaperLikeDataset() {
  auto profile = datagen::UniformTestProfile("t", 200, {12, 7, 5});
  profile.attributes[0].kind = AttrKind::kOrdinal;
  profile.attributes[0].zipf_s = 0.7;
  profile.attributes[1].zipf_s = 0.5;
  return datagen::Generate(profile, 77).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Microaggregation

TEST(MicroaggregationTest, UnivariateGroupsShareValue) {
  Dataset original = PaperLikeDataset();
  Microaggregation method(5, MicroOrdering::kUnivariate);
  Rng rng(1);
  Dataset masked = method.Protect(original, {0}, &rng).ValueOrDie();
  // Every masked category must cover at least k records (groups of >= 5 all
  // collapse to one category; distinct groups may share a centroid).
  auto counts = CategoryCounts(masked, 0);
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) EXPECT_GE(counts[c], 5) << "category " << c;
  }
}

TEST(MicroaggregationTest, LargerKLosesMoreDetail) {
  Dataset original = PaperLikeDataset();
  Rng rng1(1), rng2(1);
  Dataset small_k = Microaggregation(3, MicroOrdering::kSortByAttr0)
                        .Protect(original, AllAttrs(original), &rng1)
                        .ValueOrDie();
  Dataset large_k = Microaggregation(14, MicroOrdering::kSortByAttr0)
                        .Protect(original, AllAttrs(original), &rng2)
                        .ValueOrDie();
  EXPECT_LT(CountDiffs(original, small_k, AllAttrs(original)),
            CountDiffs(original, large_k, AllAttrs(original)));
}

TEST(MicroaggregationTest, OrdinalCentroidIsMedian) {
  // One ordinal attribute, 6 records in one group of k=6: median of codes.
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 10}},
                                  {{0}, {1}, {2}, {7}, {8}, {9}});
  Microaggregation method(6, MicroOrdering::kUnivariate);
  Rng rng(1);
  Dataset masked = method.Protect(original, {0}, &rng).ValueOrDie();
  for (int64_t r = 0; r < masked.num_rows(); ++r) {
    EXPECT_EQ(masked.Code(r, 0), 7);  // upper median of {0,1,2,7,8,9}
  }
}

TEST(MicroaggregationTest, NominalCentroidIsMode) {
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 5}},
                                  {{3}, {3}, {3}, {1}, {0}, {2}});
  Microaggregation method(6, MicroOrdering::kUnivariate);
  Rng rng(1);
  Dataset masked = method.Protect(original, {0}, &rng).ValueOrDie();
  for (int64_t r = 0; r < masked.num_rows(); ++r) {
    EXPECT_EQ(masked.Code(r, 0), 3);  // plurality value
  }
}

TEST(MicroaggregationTest, RemainderJoinsLastGroup) {
  // 7 records, k=3 -> groups {3, 4}: no masked category count below 3.
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 8}},
                                  {{0}, {1}, {2}, {3}, {4}, {5}, {6}});
  Microaggregation method(3, MicroOrdering::kUnivariate);
  Rng rng(1);
  Dataset masked = method.Protect(original, {0}, &rng).ValueOrDie();
  auto counts = CategoryCounts(masked, 0);
  int64_t covered = 0;
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > 0) {
      EXPECT_GE(counts[c], 3);
      covered += counts[c];
    }
  }
  EXPECT_EQ(covered, 7);
}

TEST(MicroaggregationTest, RejectsBadK) {
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  EXPECT_FALSE(Microaggregation(1, MicroOrdering::kUnivariate)
                   .Protect(original, {0}, &rng)
                   .ok());
}

TEST(MicroaggregationTest, MultivariateOrderingsShareGrouping) {
  // Multivariate variants write the same grouping to all attributes: the
  // masked joint table can have at most ceil(n/k) distinct combinations.
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  Dataset masked = Microaggregation(10, MicroOrdering::kSortBySum)
                       .Protect(original, {0, 1, 2}, &rng)
                       .ValueOrDie();
  auto table = ContingencyTable::Build(masked, {0, 1, 2}).ValueOrDie();
  EXPECT_LE(table.num_cells(), static_cast<size_t>(200 / 10));
}

// ---------------------------------------------------------------------------
// Bottom / top coding

TEST(BottomCodingTest, CollapsesLowCategories) {
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 10}},
                                  {{0}, {1}, {2}, {5}, {9}});
  BottomCoding method(0.3);  // threshold = round(0.3*9) = 3
  Rng rng(1);
  Dataset masked = method.Protect(original, {0}, &rng).ValueOrDie();
  EXPECT_EQ(masked.Code(0, 0), 3);
  EXPECT_EQ(masked.Code(1, 0), 3);
  EXPECT_EQ(masked.Code(2, 0), 3);
  EXPECT_EQ(masked.Code(3, 0), 5);  // above threshold untouched
  EXPECT_EQ(masked.Code(4, 0), 9);
}

TEST(TopCodingTest, CollapsesHighCategories) {
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 10}},
                                  {{0}, {5}, {7}, {8}, {9}});
  TopCoding method(0.3);  // threshold = 9 - 3 = 6
  Rng rng(1);
  Dataset masked = method.Protect(original, {0}, &rng).ValueOrDie();
  EXPECT_EQ(masked.Code(0, 0), 0);
  EXPECT_EQ(masked.Code(1, 0), 5);
  EXPECT_EQ(masked.Code(2, 0), 6);
  EXPECT_EQ(masked.Code(3, 0), 6);
  EXPECT_EQ(masked.Code(4, 0), 6);
}

TEST(CodingTest, ThresholdsStayInsideDomain) {
  for (double f : {0.05, 0.2, 0.5, 0.9}) {
    for (int card : {2, 3, 8, 25}) {
      int32_t bottom = BottomCoding(f).ThresholdCode(card);
      EXPECT_GE(bottom, 1);
      EXPECT_LE(bottom, card - 1);
      int32_t top = TopCoding(f).ThresholdCode(card);
      EXPECT_GE(top, 0);
      EXPECT_LE(top, card - 2);
    }
  }
}

TEST(CodingTest, LargerFractionCollapsesMore) {
  Dataset original = PaperLikeDataset();
  Rng rng1(1), rng2(1);
  Dataset mild =
      BottomCoding(0.1).Protect(original, {0}, &rng1).ValueOrDie();
  Dataset harsh =
      BottomCoding(0.6).Protect(original, {0}, &rng2).ValueOrDie();
  EXPECT_LE(CountDiffs(original, mild, {0}), CountDiffs(original, harsh, {0}));
}

TEST(CodingTest, RejectsBadFraction) {
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  EXPECT_FALSE(BottomCoding(0.0).Protect(original, {0}, &rng).ok());
  EXPECT_FALSE(TopCoding(1.0).Protect(original, {0}, &rng).ok());
}

// ---------------------------------------------------------------------------
// Global recoding

TEST(GlobalRecodingTest, MapsToGroupRepresentative) {
  GlobalRecoding method(3);
  // card 9, groups {0,1,2}->1, {3,4,5}->4, {6,7,8}->7.
  EXPECT_EQ(method.Representative(0, 9), 1);
  EXPECT_EQ(method.Representative(2, 9), 1);
  EXPECT_EQ(method.Representative(4, 9), 4);
  EXPECT_EQ(method.Representative(8, 9), 7);
}

TEST(GlobalRecodingTest, SingletonTailMergesBackwards) {
  GlobalRecoding method(2);
  // card 5: groups {0,1}, {2,3}, remainder {4} merges into {2,3,4}.
  EXPECT_EQ(method.Representative(4, 5), 3);
  EXPECT_EQ(method.Representative(3, 5), 2);
}

TEST(GlobalRecodingTest, IsIdempotentOnRepresentatives) {
  GlobalRecoding method(3);
  for (int card : {5, 9, 14, 25}) {
    for (int32_t code = 0; code < card; ++code) {
      int32_t rep = method.Representative(code, card);
      EXPECT_EQ(method.Representative(rep, card), rep)
          << "card=" << card << " code=" << code;
      EXPECT_GE(rep, 0);
      EXPECT_LT(rep, card);
    }
  }
}

TEST(GlobalRecodingTest, RecodingIsGlobal) {
  // All records with the same original category get the same masked category.
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  Dataset masked =
      GlobalRecoding(4).Protect(original, {0, 1, 2}, &rng).ValueOrDie();
  for (int attr : {0, 1, 2}) {
    std::vector<int32_t> mapping(
        static_cast<size_t>(original.schema().attribute(attr).cardinality()), -1);
    for (int64_t r = 0; r < original.num_rows(); ++r) {
      auto orig = static_cast<size_t>(original.Code(r, attr));
      if (mapping[orig] < 0) {
        mapping[orig] = masked.Code(r, attr);
      } else {
        EXPECT_EQ(mapping[orig], masked.Code(r, attr));
      }
    }
  }
}

TEST(GlobalRecodingTest, RejectsBadGroupSize) {
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  EXPECT_FALSE(GlobalRecoding(1).Protect(original, {0}, &rng).ok());
}

// ---------------------------------------------------------------------------
// Rank swapping

TEST(RankSwappingTest, PreservesMarginalExactly) {
  Dataset original = PaperLikeDataset();
  Rng rng(3);
  Dataset masked =
      RankSwapping(10).Protect(original, {0, 1, 2}, &rng).ValueOrDie();
  for (int attr : {0, 1, 2}) {
    EXPECT_EQ(CategoryCounts(original, attr), CategoryCounts(masked, attr))
        << "attr " << attr;
  }
}

TEST(RankSwappingTest, ChangesRecords) {
  Dataset original = PaperLikeDataset();
  Rng rng(3);
  Dataset masked =
      RankSwapping(10).Protect(original, {0, 1, 2}, &rng).ValueOrDie();
  EXPECT_GT(CountDiffs(original, masked, {0, 1, 2}), 0);
}

TEST(RankSwappingTest, WindowBoundsRankDisplacement) {
  // With p% window, a swapped value's position in the sorted order moves at
  // most round(p/100 * n); in category terms the masked value's midrank must
  // stay within the window of the original's (tie spans widen this by the
  // category run length, so test with distinct values).
  std::vector<std::vector<int32_t>> rows;
  for (int32_t i = 0; i < 100; ++i) rows.push_back({i});
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 100}}, rows);
  double p = 5.0;
  Rng rng(11);
  Dataset masked = RankSwapping(p).Protect(original, {0}, &rng).ValueOrDie();
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    // Distinct values: code == rank.
    EXPECT_LE(std::abs(original.Code(r, 0) - masked.Code(r, 0)), 5)
        << "record " << r;
  }
}

TEST(RankSwappingTest, LargerWindowMoreDistortion) {
  Dataset original = PaperLikeDataset();
  Rng rng1(3), rng2(3);
  Dataset mild = RankSwapping(2).Protect(original, {0}, &rng1).ValueOrDie();
  Dataset harsh = RankSwapping(22).Protect(original, {0}, &rng2).ValueOrDie();
  // Compare total ordinal displacement rather than raw diff counts.
  auto displacement = [&](const Dataset& masked) {
    int64_t total = 0;
    for (int64_t r = 0; r < original.num_rows(); ++r) {
      total += std::abs(original.Code(r, 0) - masked.Code(r, 0));
    }
    return total;
  };
  EXPECT_LT(displacement(mild), displacement(harsh));
}

/// The original O(n·window) partner selection: sort by (code, random
/// tie-break), then for each unswapped record materialize the unswapped
/// positions in (i, i+window] and draw one uniformly. The production path
/// replaces the scan with a Fenwick order-statistics set; it must consume
/// the identical RNG stream and pick the identical partners.
Dataset NaiveRankSwap(const Dataset& original, const std::vector<int>& attrs,
                      double p_percent, Rng* rng) {
  Dataset masked = original.Clone();
  int64_t n = original.num_rows();
  auto window = static_cast<int64_t>(
      std::llround(p_percent / 100.0 * static_cast<double>(n)));
  window = std::max<int64_t>(1, window);
  for (int attr : attrs) {
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::vector<uint64_t> tiebreak(static_cast<size_t>(n));
    for (auto& t : tiebreak) t = rng->NextU64();
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      int32_t ca = original.Code(a, attr);
      int32_t cb = original.Code(b, attr);
      if (ca != cb) return ca < cb;
      return tiebreak[static_cast<size_t>(a)] <
             tiebreak[static_cast<size_t>(b)];
    });
    std::vector<bool> swapped(static_cast<size_t>(n), false);
    for (int64_t i = 0; i < n; ++i) {
      if (swapped[static_cast<size_t>(i)]) continue;
      int64_t hi = std::min(n - 1, i + window);
      std::vector<int64_t> candidates;
      for (int64_t j = i + 1; j <= hi; ++j) {
        if (!swapped[static_cast<size_t>(j)]) candidates.push_back(j);
      }
      if (candidates.empty()) {
        swapped[static_cast<size_t>(i)] = true;
        continue;
      }
      int64_t j = candidates[rng->UniformIndex(candidates.size())];
      int64_t rec_i = order[static_cast<size_t>(i)];
      int64_t rec_j = order[static_cast<size_t>(j)];
      int32_t vi = masked.Code(rec_i, attr);
      masked.SetCode(rec_i, attr, masked.Code(rec_j, attr));
      masked.SetCode(rec_j, attr, vi);
      swapped[static_cast<size_t>(i)] = true;
      swapped[static_cast<size_t>(j)] = true;
    }
  }
  return masked;
}

TEST(RankSwappingTest, FenwickSelectionMatchesNaiveScanBitExactly) {
  Dataset original = PaperLikeDataset();
  for (double p : {0.4, 1.0, 7.0, 33.0, 90.0, 99.9}) {
    Rng fast_rng(17), naive_rng(17);
    Dataset fast =
        RankSwapping(p).Protect(original, {0, 1, 2}, &fast_rng).ValueOrDie();
    Dataset naive = NaiveRankSwap(original, {0, 1, 2}, p, &naive_rng);
    ASSERT_TRUE(fast.SameCodes(naive)) << "p=" << p;
    // Same number of RNG draws too: a divergent draw count would silently
    // shift every downstream protection in a grid build.
    EXPECT_EQ(fast_rng.NextU64(), naive_rng.NextU64()) << "p=" << p;
  }
}

TEST(RankSwappingTest, RejectsBadP) {
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  EXPECT_FALSE(RankSwapping(0).Protect(original, {0}, &rng).ok());
  EXPECT_FALSE(RankSwapping(100).Protect(original, {0}, &rng).ok());
}

// ---------------------------------------------------------------------------
// PRAM

TEST(PramTest, RetainOneIsIdentity) {
  Dataset original = PaperLikeDataset();
  Rng rng(5);
  Dataset masked = Pram(1.0).Protect(original, {0, 1, 2}, &rng).ValueOrDie();
  EXPECT_TRUE(masked.SameCodes(original));
}

TEST(PramTest, LowerRetentionMoreChanges) {
  Dataset original = PaperLikeDataset();
  Rng rng1(5), rng2(5);
  Dataset mild = Pram(0.9).Protect(original, {0, 1, 2}, &rng1).ValueOrDie();
  Dataset harsh = Pram(0.1).Protect(original, {0, 1, 2}, &rng2).ValueOrDie();
  EXPECT_LT(CountDiffs(original, mild, {0, 1, 2}),
            CountDiffs(original, harsh, {0, 1, 2}));
}

TEST(PramTest, ChangeRateTracksRetention) {
  Dataset original = PaperLikeDataset();
  Rng rng(5);
  double retain = 0.5;
  Dataset masked =
      Pram(retain).Protect(original, {0, 1, 2}, &rng).ValueOrDie();
  double changed =
      static_cast<double>(CountDiffs(original, masked, {0, 1, 2})) /
      static_cast<double>(3 * original.num_rows());
  // Expected change rate: (1-retain) * P(resample differs), which is below
  // 1-retain but well above half of it for these marginals.
  EXPECT_LT(changed, 1.0 - retain + 0.05);
  EXPECT_GT(changed, (1.0 - retain) * 0.4);
}

TEST(PramTest, MarginalRoughlyPreserved) {
  // PRAM towards the empirical marginal keeps frequencies stable in
  // expectation even at low retention.
  auto profile = datagen::UniformTestProfile("p", 3000, {6});
  profile.attributes[0].zipf_s = 1.0;
  Dataset original = datagen::Generate(profile, 9).ValueOrDie();
  Rng rng(5);
  Dataset masked = Pram(0.2).Protect(original, {0}, &rng).ValueOrDie();
  auto orig_freq = CategoryFrequencies(original, 0);
  auto mask_freq = CategoryFrequencies(masked, 0);
  for (size_t c = 0; c < orig_freq.size(); ++c) {
    EXPECT_NEAR(orig_freq[c], mask_freq[c], 0.03) << "category " << c;
  }
}

TEST(PramTest, RejectsBadRetention) {
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  EXPECT_FALSE(Pram(-0.1).Protect(original, {0}, &rng).ok());
  EXPECT_FALSE(Pram(1.1).Protect(original, {0}, &rng).ok());
}

// ---------------------------------------------------------------------------
// Shared-method validation + property sweep over every instantiable method

TEST(MethodValidationTest, CommonErrors) {
  Dataset original = PaperLikeDataset();
  Rng rng(1);
  Pram method(0.5);
  EXPECT_FALSE(method.Protect(original, {}, &rng).ok());          // no attrs
  EXPECT_FALSE(method.Protect(original, {99}, &rng).ok());        // bad index
  EXPECT_FALSE(method.Protect(original, {0, 0}, &rng).ok());      // duplicate
  Dataset empty = BuildDataset({{"A", AttrKind::kNominal, 2}}, {});
  EXPECT_FALSE(method.Protect(empty, {0}, &rng).ok());            // no rows
}

class AllMethodsPropertyTest : public ::testing::TestWithParam<size_t> {
 protected:
  static const std::vector<std::unique_ptr<ProtectionMethod>>& Methods() {
    static auto* methods = new std::vector<std::unique_ptr<ProtectionMethod>>(
        InstantiateMethods(HousingPopulationSpec()));
    return *methods;
  }
};

TEST_P(AllMethodsPropertyTest, DomainClosureDeterminismAndShape) {
  const auto& method = Methods()[GetParam()];
  Dataset original = PaperLikeDataset();
  std::vector<int> attrs = {0, 1, 2};

  Rng rng_a(42);
  Dataset masked = method->Protect(original, attrs, &rng_a).ValueOrDie();

  // Shape: same rows, shared schema.
  EXPECT_EQ(masked.num_rows(), original.num_rows());
  EXPECT_EQ(masked.schema_ptr(), original.schema_ptr());

  // Domain closure: every masked value is a valid original category.
  EXPECT_TRUE(masked.Validate().ok()) << method->Label();

  // Unprotected attributes are untouched (none here beyond attrs, but check
  // codes outside attrs anyway when they exist).
  for (int a = 3; a < original.num_attributes(); ++a) {
    for (int64_t r = 0; r < original.num_rows(); ++r) {
      EXPECT_EQ(masked.Code(r, a), original.Code(r, a));
    }
  }

  // Determinism: same seed, same masked file.
  Rng rng_b(42);
  Dataset again = method->Protect(original, attrs, &rng_b).ValueOrDie();
  EXPECT_TRUE(masked.SameCodes(again)) << method->Label();

  // The original is never modified.
  Dataset pristine = PaperLikeDataset();
  EXPECT_TRUE(original.SameCodes(pristine));
}

INSTANTIATE_TEST_SUITE_P(
    HousingGrid, AllMethodsPropertyTest,
    ::testing::Range<size_t>(0, 110));  // 110 methods in the Housing spec

// ---------------------------------------------------------------------------
// Population builder

TEST(PopulationBuilderTest, PaperCountsExact) {
  EXPECT_EQ(HousingPopulationSpec().TotalCount(), 110);
  EXPECT_EQ(GermanFlarePopulationSpec().TotalCount(), 104);
  EXPECT_EQ(AdultPopulationSpec().TotalCount(), 86);
}

TEST(PopulationBuilderTest, BuildsEveryProtectionWithLabel) {
  Dataset original = PaperLikeDataset();
  auto files =
      BuildProtections(original, {0, 1, 2}, AdultPopulationSpec(), 123)
          .ValueOrDie();
  ASSERT_EQ(files.size(), 86u);
  std::set<std::string> labels;
  for (const auto& file : files) {
    EXPECT_TRUE(file.data.Validate().ok()) << file.method_label;
    labels.insert(file.method_label);
  }
  EXPECT_EQ(labels.size(), 86u);  // all labels unique
}

TEST(PopulationBuilderTest, DeterministicGivenSeed) {
  Dataset original = PaperLikeDataset();
  auto a = BuildProtections(original, {0, 1, 2}, GermanFlarePopulationSpec(), 9)
               .ValueOrDie();
  auto b = BuildProtections(original, {0, 1, 2}, GermanFlarePopulationSpec(), 9)
               .ValueOrDie();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].data.SameCodes(b[i].data)) << a[i].method_label;
  }
}

TEST(PopulationBuilderTest, MethodMixMatchesSpec) {
  Dataset original = PaperLikeDataset();
  auto files =
      BuildProtections(original, {0, 1, 2}, HousingPopulationSpec(), 1)
          .ValueOrDie();
  int micro = 0, bottom = 0, top = 0, recode = 0, swap = 0, pram = 0;
  for (const auto& file : files) {
    if (file.method_label.rfind("microaggregation", 0) == 0) ++micro;
    if (file.method_label.rfind("bottomcoding", 0) == 0) ++bottom;
    if (file.method_label.rfind("topcoding", 0) == 0) ++top;
    if (file.method_label.rfind("globalrecoding", 0) == 0) ++recode;
    if (file.method_label.rfind("rankswapping", 0) == 0) ++swap;
    if (file.method_label.rfind("pram", 0) == 0) ++pram;
  }
  EXPECT_EQ(micro, 72);
  EXPECT_EQ(bottom, 6);
  EXPECT_EQ(top, 6);
  EXPECT_EQ(recode, 6);
  EXPECT_EQ(swap, 11);
  EXPECT_EQ(pram, 9);
}

}  // namespace
}  // namespace protection
}  // namespace evocat
