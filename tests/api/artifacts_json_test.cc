#include "api/artifacts_json.h"

#include <sstream>

#include <gtest/gtest.h>

#include "data/csv.h"

namespace evocat {
namespace api {
namespace {

/// One tiny end-to-end run to serialize.
RunArtifacts TinyArtifacts() {
  JobSpec spec;
  spec.name = "json-run";
  spec.source.kind = SourceSpec::Kind::kSynthetic;
  spec.source.has_inline_profile = true;
  spec.source.profile.name = "tiny";
  spec.source.profile.num_records = 60;
  for (const char* name : {"a0", "a1", "a2"}) {
    datagen::SyntheticAttribute attribute;
    attribute.name = name;
    attribute.cardinality = 7;
    spec.source.profile.attributes.push_back(attribute);
  }
  spec.source.profile.protected_attributes = {"a0", "a1", "a2"};
  MethodGridSpec micro;
  micro.name = "microaggregation";
  micro.grid = {{"k", {"3", "6"}}};
  MethodGridSpec pram;
  pram.name = "pram";
  pram.grid = {{"retain", {"0.7", "0.4"}}};
  spec.methods = {micro, pram};
  spec.measures.prl_em_iterations = 10;
  spec.ga.generations = 10;
  spec.seeds.master = 77;
  Session session;
  return session.Run(spec).ValueOrDie();
}

TEST(ArtifactsJsonTest, DocumentRoundTripsThroughParser) {
  RunArtifacts artifacts = TinyArtifacts();
  JsonValue json = ArtifactsToJson(artifacts);

  // The dump must parse back; spot-check the load-bearing fields.
  JsonValue parsed = JsonValue::Parse(json.Dump(2)).ValueOrDie();
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.Find("job_name")->string_value(), "json-run");
  EXPECT_EQ(parsed.Find("dataset")->string_value(), "tiny");
  EXPECT_EQ(parsed.Find("num_rows")->int_value(), 60);
  EXPECT_EQ(parsed.Find("population_size")->int_value(), 4);
  EXPECT_EQ(parsed.Find("history")->size(), 10u);
  EXPECT_EQ(parsed.Find("initial_population")->size(), 4u);
  EXPECT_EQ(parsed.Find("final_population")->size(), 4u);
  ASSERT_NE(parsed.Find("best"), nullptr);
  EXPECT_DOUBLE_EQ(
      parsed.Find("best")->Find("fitness")->Find("score")->number_value(),
      artifacts.best.fitness.score);
  EXPECT_DOUBLE_EQ(parsed.Find("final_scores")->Find("min")->number_value(),
                   artifacts.final_scores.min);
}

TEST(ArtifactsJsonTest, EmbeddedSpecReproducesTheRun) {
  RunArtifacts artifacts = TinyArtifacts();
  JsonValue json = ArtifactsToJson(artifacts);
  // The "spec" member is the resolved spec; running it again is bit-identical.
  JobSpec replay = JobSpec::FromJson(*json.Find("spec")).ValueOrDie();
  Session session;
  RunArtifacts second = session.Run(replay).ValueOrDie();
  EXPECT_TRUE(second.best_data.SameCodes(artifacts.best_data));
  EXPECT_DOUBLE_EQ(second.final_scores.min, artifacts.final_scores.min);
}

TEST(ArtifactsJsonTest, BestCsvDecodesToTheBestDataset) {
  RunArtifacts artifacts = TinyArtifacts();
  JsonValue json = ArtifactsToJson(artifacts);
  ASSERT_NE(json.Find("best_csv"), nullptr);
  std::istringstream csv(json.Find("best_csv")->string_value());
  Dataset decoded = ReadCsvStream(csv).ValueOrDie();
  EXPECT_EQ(decoded.num_rows(), artifacts.best_data.num_rows());
  EXPECT_EQ(decoded.num_attributes(), artifacts.best_data.num_attributes());
}

TEST(ArtifactsJsonTest, BestCsvCanBeOmitted) {
  RunArtifacts artifacts = TinyArtifacts();
  ArtifactsJsonOptions options;
  options.include_best_csv = false;
  JsonValue json = ArtifactsToJson(artifacts, options);
  EXPECT_EQ(json.Find("best_csv"), nullptr);
  EXPECT_NE(json.Find("best"), nullptr);
}

TEST(ArtifactsJsonTest, PrunedArtifactsOmitPopulationKeys) {
  JobSpec spec;
  spec.source.kind = SourceSpec::Kind::kSynthetic;
  spec.source.case_name = "adult";
  spec.ga.generations = 0;
  spec.outputs.initial_population = false;
  spec.outputs.final_population = false;
  spec.outputs.history = false;
  // Trim the roster so the job stays fast.
  MethodGridSpec pram;
  pram.name = "pram";
  pram.grid = {{"retain", {"0.8", "0.5"}}};
  spec.methods = {pram};
  spec.measures.prl_em_iterations = 5;
  Session session;
  RunArtifacts artifacts = session.Run(spec).ValueOrDie();
  JsonValue json = ArtifactsToJson(artifacts);
  EXPECT_EQ(json.Find("initial_population"), nullptr);
  EXPECT_EQ(json.Find("final_population"), nullptr);
  EXPECT_EQ(json.Find("history"), nullptr);
  EXPECT_NE(json.Find("final_scores"), nullptr);
}

}  // namespace
}  // namespace api
}  // namespace evocat
