#include "api/json.h"

#include <gtest/gtest.h>

namespace evocat {
namespace api {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null").ValueOrDie().is_null());
  EXPECT_TRUE(JsonValue::Parse("true").ValueOrDie().bool_value());
  EXPECT_FALSE(JsonValue::Parse("false").ValueOrDie().bool_value());
  EXPECT_EQ(JsonValue::Parse("42").ValueOrDie().int_value(), 42);
  EXPECT_EQ(JsonValue::Parse("-7").ValueOrDie().int_value(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5").ValueOrDie().number_value(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3").ValueOrDie().number_value(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").ValueOrDie().string_value(), "hi");
}

TEST(JsonParseTest, IntegerVsDouble) {
  EXPECT_TRUE(JsonValue::Parse("42").ValueOrDie().is_integer());
  // Integral doubles normalize to exact integers ("42.0" -> 42).
  EXPECT_TRUE(JsonValue::Parse("42.0").ValueOrDie().is_integer());
  EXPECT_EQ(JsonValue::Parse("42.0").ValueOrDie().int_value(), 42);
  EXPECT_FALSE(JsonValue::Parse("42.5").ValueOrDie().is_integer());
  // Seeds need all 63 bits.
  EXPECT_EQ(JsonValue::Parse("9007199254740993").ValueOrDie().int_value(),
            9007199254740993LL);
  // 2^63 exceeds int64: kept as a double (no sign-flipping cast), and its
  // dump re-parses to the identical value.
  JsonValue big = JsonValue::Parse("9223372036854775808").ValueOrDie();
  EXPECT_FALSE(big.is_integer());
  EXPECT_EQ(big.number_value(), 9223372036854775808.0);
  EXPECT_EQ(JsonValue::Parse(big.Dump()).ValueOrDie().number_value(),
            big.number_value());
}

TEST(JsonParseTest, NestedStructures) {
  auto value =
      JsonValue::Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})").ValueOrDie();
  ASSERT_TRUE(value.is_object());
  const JsonValue* a = value.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->size(), 3u);
  EXPECT_EQ(a->at(0).int_value(), 1);
  EXPECT_TRUE(a->at(2).Find("b")->bool_value());
  EXPECT_EQ(value.Find("c")->string_value(), "x");
  EXPECT_EQ(value.Find("missing"), nullptr);
}

TEST(JsonParseTest, ObjectsPreserveInsertionOrder) {
  auto value = JsonValue::Parse(R"({"z": 1, "a": 2, "m": 3})").ValueOrDie();
  ASSERT_EQ(value.members().size(), 3u);
  EXPECT_EQ(value.members()[0].first, "z");
  EXPECT_EQ(value.members()[1].first, "a");
  EXPECT_EQ(value.members()[2].first, "m");
}

TEST(JsonParseTest, StringEscapes) {
  auto value = JsonValue::Parse(R"("line\nbreak \"quoted\" A")");
  EXPECT_EQ(value.ValueOrDie().string_value(), "line\nbreak \"quoted\" A");
}

TEST(JsonParseTest, SurrogatePairsDecodeToUtf8) {
  // \ud83d\ude00 is U+1F600 (grinning face); the escaped pair must decode
  // to one 4-byte UTF-8 sequence, not CESU-8 halves.
  auto value = JsonValue::Parse("\"\\ud83d\\ude00\"").ValueOrDie();
  EXPECT_EQ(value.string_value(), "\xF0\x9F\x98\x80");
  // Lone or malformed surrogates are errors.
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83d\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\ude00\"").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\ud83dA\"").ok());
}

TEST(JsonParseTest, ErrorsNameLineAndColumn) {
  auto result = JsonValue::Parse("{\n  \"a\": nope\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status().ToString();

  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2,]").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
}

TEST(JsonParseTest, RejectsDuplicateKeys) {
  auto result = JsonValue::Parse(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const std::string text =
      R"({"name":"x","values":[1,2.5,true,null],"nested":{"k":"v"}})";
  auto value = JsonValue::Parse(text).ValueOrDie();
  EXPECT_EQ(value.Dump(), text);
}

TEST(JsonDumpTest, PrettyPrintReparsesIdentically) {
  auto value =
      JsonValue::Parse(R"({"a": [1, {"b": [2, 3]}], "c": 0.125})").ValueOrDie();
  std::string pretty = value.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto reparsed = JsonValue::Parse(pretty).ValueOrDie();
  EXPECT_EQ(reparsed.Dump(), value.Dump());
}

TEST(JsonDumpTest, DoublesRoundTripExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-9, 123456.789, -0.08}) {
    JsonValue value = JsonValue::MakeNumber(v);
    auto reparsed = JsonValue::Parse(value.Dump()).ValueOrDie();
    EXPECT_EQ(reparsed.number_value(), v);
  }
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  JsonValue value = JsonValue::MakeString("tab\there\x01");
  std::string dumped = value.Dump();
  EXPECT_EQ(dumped, "\"tab\\there\\u0001\"");
  EXPECT_EQ(JsonValue::Parse(dumped).ValueOrDie().string_value(),
            value.string_value());
}

TEST(JsonValueTest, SetReplacesInPlace) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("a", JsonValue::MakeInt(1));
  object.Set("b", JsonValue::MakeInt(2));
  object.Set("a", JsonValue::MakeInt(3));
  ASSERT_EQ(object.members().size(), 2u);
  EXPECT_EQ(object.members()[0].first, "a");
  EXPECT_EQ(object.Find("a")->int_value(), 3);
}

}  // namespace
}  // namespace api
}  // namespace evocat
