#include "api/session.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "data/csv.h"

namespace evocat {
namespace api {
namespace {

/// A small synthetic job (inline profile, trimmed roster, few generations)
/// that runs in well under a second.
std::string TinyJobJson(uint64_t master_seed, const std::string& name) {
  return R"({
    "name": ")" + name + R"(",
    "source": {
      "kind": "synthetic",
      "profile": {
        "name": "tiny",
        "num_records": 60,
        "attributes": [
          {"name": "a0", "kind": "ordinal", "cardinality": 7},
          {"name": "a1", "kind": "nominal", "cardinality": 5},
          {"name": "a2", "kind": "nominal", "cardinality": 9}
        ],
        "protected_attributes": ["a0", "a1", "a2"]
      }
    },
    "methods": [
      {"name": "microaggregation", "grid": {"k": [3, 6]}},
      {"name": "pram", "grid": {"retain": [0.7, 0.4]}},
      {"name": "rankswapping", "grid": {"p_percent": [10]}}
    ],
    "measures": {"aggregation": "mean", "prl_em_iterations": 10},
    "ga": {"generations": 12},
    "seeds": {"master": )" + std::to_string(master_seed) + R"(}
  })";
}

TEST(SessionTest, JsonSpecDrivesEndToEndRun) {
  JobSpec spec = JobSpec::FromJsonText(TinyJobJson(11, "tiny-run")).ValueOrDie();
  Session session;
  RunArtifacts artifacts = session.Run(spec).ValueOrDie();

  EXPECT_EQ(artifacts.job_name, "tiny-run");
  EXPECT_EQ(artifacts.dataset, "tiny");
  EXPECT_EQ(artifacts.num_rows, 60);
  EXPECT_EQ(artifacts.protected_attrs.size(), 3u);
  EXPECT_EQ(artifacts.initial.size(), 5u);  // 2 + 2 + 1 method instances
  EXPECT_EQ(artifacts.final_population.size(), 5u);
  EXPECT_EQ(artifacts.history.size(), 12u);
  EXPECT_GT(artifacts.evaluations, 0);

  // Populations are sorted and the GA never worsens the elitist stats.
  EXPECT_LE(artifacts.initial_scores.min, artifacts.initial_scores.mean);
  EXPECT_LE(artifacts.final_scores.min, artifacts.initial_scores.min + 1e-9);
  EXPECT_DOUBLE_EQ(artifacts.best.fitness.score, artifacts.final_scores.min);

  // The resolved spec pins every stage seed.
  EXPECT_TRUE(artifacts.spec.seeds.data.has_value());
  EXPECT_TRUE(artifacts.spec.seeds.protection.has_value());
  EXPECT_TRUE(artifacts.spec.seeds.ga.has_value());

  // Method provenance flows from the registry-built roster.
  bool found_micro = false;
  for (const auto& member : artifacts.initial) {
    if (member.origin.rfind("microaggregation(", 0) == 0) found_micro = true;
  }
  EXPECT_TRUE(found_micro);
}

TEST(SessionTest, ResolvedSpecReproducesRunExactly) {
  Session session;
  JobSpec spec = JobSpec::FromJsonText(TinyJobJson(21, "repro")).ValueOrDie();
  RunArtifacts first = session.Run(spec).ValueOrDie();
  // Round-trip the resolved spec through JSON and run it again.
  JobSpec replay =
      JobSpec::FromJsonText(first.spec.ToJsonText()).ValueOrDie();
  RunArtifacts second = session.Run(replay).ValueOrDie();
  EXPECT_DOUBLE_EQ(first.final_scores.min, second.final_scores.min);
  EXPECT_DOUBLE_EQ(first.final_scores.mean, second.final_scores.mean);
  EXPECT_DOUBLE_EQ(first.final_scores.max, second.final_scores.max);
  EXPECT_EQ(first.best.origin, second.best.origin);
  EXPECT_TRUE(first.best_data.SameCodes(second.best_data));
}

TEST(SessionTest, OutputTogglesPruneArtifacts) {
  JobSpec spec = JobSpec::FromJsonText(TinyJobJson(31, "pruned")).ValueOrDie();
  spec.outputs.initial_population = false;
  spec.outputs.final_population = false;
  spec.outputs.history = false;
  Session session;
  RunArtifacts artifacts = session.Run(spec).ValueOrDie();
  EXPECT_TRUE(artifacts.initial.empty());
  EXPECT_TRUE(artifacts.final_population.empty());
  EXPECT_TRUE(artifacts.history.empty());
  // Scores and the best individual survive regardless.
  EXPECT_GT(artifacts.initial_scores.max, 0.0);
  EXPECT_FALSE(artifacts.best.origin.empty());
}

TEST(SessionTest, RunBatchMatchesSoloRunsPerSeed) {
  std::vector<JobSpec> jobs;
  for (uint64_t seed : {101, 202, 303}) {
    jobs.push_back(JobSpec::FromJsonText(
                       TinyJobJson(seed, "job" + std::to_string(seed)))
                       .ValueOrDie());
  }

  Session batch_session;
  std::vector<Result<RunArtifacts>> batch = batch_session.RunBatch(jobs);
  ASSERT_EQ(batch.size(), jobs.size());

  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    Session solo_session;
    RunArtifacts solo = solo_session.Run(jobs[i]).ValueOrDie();
    const RunArtifacts& batched = batch[i].ValueOrDie();
    EXPECT_EQ(batched.job_name, jobs[i].name);
    EXPECT_DOUBLE_EQ(batched.final_scores.min, solo.final_scores.min);
    EXPECT_DOUBLE_EQ(batched.final_scores.mean, solo.final_scores.mean);
    EXPECT_DOUBLE_EQ(batched.final_scores.max, solo.final_scores.max);
    EXPECT_TRUE(batched.best_data.SameCodes(solo.best_data));
  }
}

TEST(SessionTest, RunBatchIsolatesFailingJobs) {
  std::vector<JobSpec> jobs;
  jobs.push_back(JobSpec::FromJsonText(TinyJobJson(7, "good")).ValueOrDie());
  JobSpec bad = jobs[0];
  bad.name = "bad";
  bad.source.kind = SourceSpec::Kind::kCsv;
  bad.source.path = "/nonexistent/evocat.csv";
  bad.source.has_inline_profile = false;
  bad.protected_attributes = {"a0"};
  jobs.push_back(bad);

  Session session;
  std::vector<Result<RunArtifacts>> results = session.RunBatch(jobs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok()) << results[0].status().ToString();
  ASSERT_FALSE(results[1].ok());
  EXPECT_NE(results[1].status().message().find("/nonexistent/evocat.csv"),
            std::string::npos);
}

TEST(SessionTest, CsvSourceRunsEndToEnd) {
  // Materialize a small original as CSV, then drive a job from it.
  JobSpec synth = JobSpec::FromJsonText(TinyJobJson(5, "gen")).ValueOrDie();
  Session session;
  Session::SourceData generated = session.LoadSource(synth).ValueOrDie();
  std::string path = ::testing::TempDir() + "/evocat_session_original.csv";
  ASSERT_TRUE(WriteCsvFile(generated.original, path).ok());

  JobSpec spec = JobSpec::FromJsonText(TinyJobJson(5, "csv")).ValueOrDie();
  spec.source = SourceSpec();
  spec.source.kind = SourceSpec::Kind::kCsv;
  spec.source.path = path;
  spec.source.ordinal_attributes = {"a0"};
  spec.protected_attributes = {"a0", "a1", "a2"};

  RunArtifacts artifacts = session.Run(spec).ValueOrDie();
  EXPECT_EQ(artifacts.dataset, path);
  EXPECT_EQ(artifacts.num_rows, 60);
  EXPECT_EQ(artifacts.initial.size(), 5u);

  // Second run hits the session's CSV cache and stays identical.
  RunArtifacts again = session.Run(spec).ValueOrDie();
  EXPECT_TRUE(artifacts.best_data.SameCodes(again.best_data));
  std::remove(path.c_str());
}

TEST(SessionTest, BestCsvOutputIsWritten) {
  JobSpec spec = JobSpec::FromJsonText(TinyJobJson(13, "out")).ValueOrDie();
  std::string path = ::testing::TempDir() + "/evocat_session_best.csv";
  spec.outputs.best_csv_path = path;
  Session session;
  RunArtifacts artifacts = session.Run(spec).ValueOrDie();

  auto written = ReadCsvFile(path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.ValueOrDie().num_rows(), artifacts.best_data.num_rows());
  std::remove(path.c_str());
}

TEST(SessionTest, SingleInstanceRosterFailsCleanly) {
  // One method instance can never form a viable GA population; the engine's
  // error must name the actual count (best-removal must not erase to zero).
  JobSpec spec = JobSpec::FromJsonText(TinyJobJson(3, "solo")).ValueOrDie();
  spec.methods.clear();
  MethodGridSpec pram;
  pram.name = "pram";
  spec.methods.push_back(pram);
  spec.remove_best_fraction = 0.5;
  Session session;
  auto result = session.Run(spec);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("got 1"), std::string::npos)
      << result.status().ToString();
}

TEST(SessionTest, SkewedBatchWorkStealingMatchesSoloRuns) {
  // 1 heavy + 3 light jobs: the shape where work stealing matters (the heavy
  // job's subtasks spill onto workers that finished their light jobs).
  // Whatever the schedule does, every artifact must stay bit-identical to a
  // solo run of the same spec.
  std::vector<JobSpec> jobs;
  JobSpec heavy = JobSpec::FromJsonText(TinyJobJson(71, "heavy")).ValueOrDie();
  heavy.source.profile.num_records = 220;
  heavy.ga.generations = 60;
  jobs.push_back(heavy);
  for (uint64_t seed : {72, 73, 74}) {
    jobs.push_back(JobSpec::FromJsonText(
                       TinyJobJson(seed, "light" + std::to_string(seed)))
                       .ValueOrDie());
  }

  Session ws_session;
  Session::BatchOptions stealing;
  stealing.work_stealing = true;
  std::vector<Result<RunArtifacts>> ws = ws_session.RunBatch(jobs, stealing);

  Session legacy_session;
  Session::BatchOptions one_per_worker;
  one_per_worker.work_stealing = false;
  std::vector<Result<RunArtifacts>> legacy =
      legacy_session.RunBatch(jobs, one_per_worker);

  ASSERT_EQ(ws.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(ws[i].ok()) << ws[i].status().ToString();
    ASSERT_TRUE(legacy[i].ok()) << legacy[i].status().ToString();
    Session solo_session;
    RunArtifacts solo = solo_session.Run(jobs[i]).ValueOrDie();
    const RunArtifacts& stolen = ws[i].ValueOrDie();
    EXPECT_DOUBLE_EQ(stolen.final_scores.min, solo.final_scores.min);
    EXPECT_DOUBLE_EQ(stolen.final_scores.mean, solo.final_scores.mean);
    EXPECT_DOUBLE_EQ(stolen.final_scores.max, solo.final_scores.max);
    EXPECT_TRUE(stolen.best_data.SameCodes(solo.best_data));
    EXPECT_TRUE(
        legacy[i].ValueOrDie().best_data.SameCodes(solo.best_data));
  }
}

TEST(SessionTest, RunControlCancelsBeforeAndDuringExecution) {
  JobSpec spec = JobSpec::FromJsonText(TinyJobJson(41, "cancel")).ValueOrDie();
  Session session;

  // Pre-set flag: the run never starts.
  RunControl preset;
  preset.cancel.store(true);
  auto never_ran = session.Run(spec, &preset);
  ASSERT_FALSE(never_ran.ok());
  EXPECT_EQ(never_ran.status().code(), StatusCode::kCancelled);

  // Cancel mid-run from another thread: a huge generation budget ends early.
  spec.ga.generations = 50000000;
  RunControl control;
  std::thread canceler([&control] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    control.cancel.store(true);
  });
  auto canceled = session.Run(spec, &control);
  canceler.join();
  ASSERT_FALSE(canceled.ok());
  EXPECT_EQ(canceled.status().code(), StatusCode::kCancelled);
  EXPECT_NE(canceled.status().message().find("generation"), std::string::npos);

  // The same spec still runs to completion without a control.
  spec.ga.generations = 5;
  EXPECT_TRUE(session.Run(spec).ok());
}

TEST(SessionTest, DefaultRosterMatchesPaperMix) {
  // No methods -> the paper's mix for the source; "german" seeds 104 files.
  JobSpec spec;
  spec.source.kind = SourceSpec::Kind::kSynthetic;
  spec.source.case_name = "german";
  std::vector<MethodGridSpec> roster =
      RosterFromPopulationSpec(protection::GermanFlarePopulationSpec());
  size_t total = 0;
  for (const auto& method : roster) total += ExpandGrid(method).size();
  EXPECT_EQ(total, 104u);
}

}  // namespace
}  // namespace api
}  // namespace evocat
