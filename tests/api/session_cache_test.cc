#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "data/csv.h"

namespace evocat {
namespace api {
namespace {

/// A fast CSV-source job over `path` (tiny roster, few generations).
JobSpec CsvJob(const std::string& path, uint64_t seed) {
  JobSpec spec;
  spec.name = "cache-" + std::to_string(seed);
  spec.source.kind = SourceSpec::Kind::kCsv;
  spec.source.path = path;
  spec.source.ordinal_attributes = {"a0"};
  spec.protected_attributes = {"a0", "a1", "a2"};
  MethodGridSpec micro;
  micro.name = "microaggregation";
  micro.grid = {{"k", {"3", "6"}}};
  MethodGridSpec pram;
  pram.name = "pram";
  pram.grid = {{"retain", {"0.7", "0.4"}}};
  spec.methods = {micro, pram};
  spec.measures.prl_em_iterations = 10;
  spec.ga.generations = 8;
  spec.seeds.master = seed;
  spec.outputs.initial_population = false;
  spec.outputs.final_population = false;
  spec.outputs.history = false;
  return spec;
}

/// Materializes a distinct tiny original CSV and returns its path.
std::string WriteOriginal(int index) {
  JobSpec synth;
  synth.source.kind = SourceSpec::Kind::kSynthetic;
  synth.source.has_inline_profile = true;
  synth.source.profile.name = "tiny";
  synth.source.profile.num_records = 50;
  for (const char* name : {"a0", "a1", "a2"}) {
    datagen::SyntheticAttribute attribute;
    attribute.name = name;
    attribute.cardinality = 6;
    synth.source.profile.attributes.push_back(attribute);
  }
  synth.source.profile.protected_attributes = {"a0", "a1", "a2"};
  synth.seeds.master = 9000 + static_cast<uint64_t>(index);
  Session session;
  Session::SourceData source = session.LoadSource(synth).ValueOrDie();
  std::string path = ::testing::TempDir() + "/evocat_cache_" +
                     std::to_string(index) + ".csv";
  EXPECT_TRUE(WriteCsvFile(source.original, path).ok());
  return path;
}

TEST(SessionCacheTest, EvictionPreservesCorrectness) {
  std::string path_a = WriteOriginal(0);
  std::string path_b = WriteOriginal(1);

  // Reference artifacts from a cache-less session.
  Session::Options uncached_options;
  uncached_options.cache_sources = false;
  Session uncached(uncached_options);
  RunArtifacts ref_a = uncached.Run(CsvJob(path_a, 1)).ValueOrDie();
  RunArtifacts ref_b = uncached.Run(CsvJob(path_b, 2)).ValueOrDie();

  // Capacity 1 forces an eviction on every alternation.
  Session::Options lru_options;
  lru_options.max_cached_sources = 1;
  Session session(lru_options);
  RunArtifacts a1 = session.Run(CsvJob(path_a, 1)).ValueOrDie();  // miss
  RunArtifacts b1 = session.Run(CsvJob(path_b, 2)).ValueOrDie();  // miss, evicts A
  RunArtifacts a2 = session.Run(CsvJob(path_a, 1)).ValueOrDie();  // miss again

  EXPECT_TRUE(a1.best_data.SameCodes(ref_a.best_data));
  EXPECT_TRUE(b1.best_data.SameCodes(ref_b.best_data));
  EXPECT_TRUE(a2.best_data.SameCodes(ref_a.best_data));
  EXPECT_DOUBLE_EQ(a1.final_scores.min, a2.final_scores.min);

  Session::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_GE(stats.evictions, 2);
  EXPECT_EQ(stats.entries, 1);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SessionCacheTest, RecencyPromotionKeepsHotEntries) {
  std::string path_a = WriteOriginal(2);
  std::string path_b = WriteOriginal(3);
  std::string path_c = WriteOriginal(4);

  Session::Options options;
  options.max_cached_sources = 2;
  Session session(options);
  EXPECT_TRUE(session.Run(CsvJob(path_a, 1)).ok());  // miss  {A}
  EXPECT_TRUE(session.Run(CsvJob(path_b, 2)).ok());  // miss  {B, A}
  EXPECT_TRUE(session.Run(CsvJob(path_a, 3)).ok());  // hit   {A, B}
  EXPECT_TRUE(session.Run(CsvJob(path_c, 4)).ok());  // miss, evicts B
  EXPECT_TRUE(session.Run(CsvJob(path_a, 5)).ok());  // hit: A survived

  Session::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  std::remove(path_c.c_str());
}

TEST(SessionCacheTest, UnboundedWhenCapacityZero) {
  std::string path_a = WriteOriginal(5);
  std::string path_b = WriteOriginal(6);
  Session::Options options;
  options.max_cached_sources = 0;
  Session session(options);
  EXPECT_TRUE(session.Run(CsvJob(path_a, 1)).ok());
  EXPECT_TRUE(session.Run(CsvJob(path_b, 2)).ok());
  Session::CacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.entries, 2);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace api
}  // namespace evocat
