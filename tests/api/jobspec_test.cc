#include "api/jobspec.h"

#include <gtest/gtest.h>

#include "metrics/registry.h"
#include "protection/registry.h"

namespace evocat {
namespace api {
namespace {

const char* kFullSpec = R"({
  "name": "full",
  "source": {
    "kind": "csv",
    "path": "data/original.csv",
    "has_header": true,
    "separator": ";",
    "ordinal_attributes": ["EDUCATION"]
  },
  "protected_attributes": ["EDUCATION", "MARITAL", "OCCUPATION"],
  "methods": [
    {"name": "microaggregation",
     "grid": {"k": [3, 5], "ordering": ["univariate", "sort0"]}},
    {"name": "pram", "grid": {"retain": [0.9, 0.5]}},
    {"name": "rankswapping"}
  ],
  "measures": {
    "aggregation": "weighted",
    "il_weight": 0.7,
    "enabled": ["CTBIL", "EBIL", "ID", "DBRL"],
    "ctbil_max_dimension": 3,
    "prl_em_iterations": 25
  },
  "fitness": {
    "delta_rebuild_fraction": 0.3,
    "rebuild_fractions": {"DBRL": 0.2, "PRL": 0.6},
    "probe_rebuild_fractions": true
  },
  "ga": {
    "generations": 250,
    "mutation_rate": 0.4,
    "leader_group_size": 8,
    "selection": "rank",
    "incremental_eval": false
  },
  "strategy": {
    "name": "islands",
    "params": {"islands": 4, "migration_interval": 10, "migrants": 2}
  },
  "remove_best_fraction": 0.05,
  "seeds": {"master": 99, "ga": 1234},
  "outputs": {"history": false, "best_csv_path": "/tmp/best.csv"}
})";

TEST(JobSpecParseTest, FullSpecParses) {
  JobSpec spec = JobSpec::FromJsonText(kFullSpec).ValueOrDie();
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.source.kind, SourceSpec::Kind::kCsv);
  EXPECT_EQ(spec.source.path, "data/original.csv");
  EXPECT_EQ(spec.source.separator, ";");
  ASSERT_EQ(spec.source.ordinal_attributes.size(), 1u);
  ASSERT_EQ(spec.protected_attributes.size(), 3u);
  ASSERT_EQ(spec.methods.size(), 3u);
  EXPECT_EQ(spec.methods[0].name, "microaggregation");
  ASSERT_EQ(spec.methods[0].grid.size(), 2u);
  EXPECT_EQ(spec.methods[0].grid[0].first, "k");
  EXPECT_EQ(spec.methods[0].grid[0].second,
            (std::vector<std::string>{"3", "5"}));
  EXPECT_EQ(spec.measures.aggregation, metrics::ScoreAggregation::kWeighted);
  EXPECT_DOUBLE_EQ(spec.measures.il_weight, 0.7);
  EXPECT_EQ(spec.measures.ctbil_max_dimension, 3);
  EXPECT_DOUBLE_EQ(spec.fitness.delta_rebuild_fraction, 0.3);
  ASSERT_EQ(spec.fitness.rebuild_fractions.size(), 2u);
  EXPECT_EQ(spec.fitness.rebuild_fractions[0].first, "DBRL");
  EXPECT_DOUBLE_EQ(spec.fitness.rebuild_fractions[0].second, 0.2);
  EXPECT_EQ(spec.fitness.rebuild_fractions[1].first, "PRL");
  EXPECT_DOUBLE_EQ(spec.fitness.rebuild_fractions[1].second, 0.6);
  EXPECT_TRUE(spec.fitness.probe_rebuild_fractions);
  EXPECT_EQ(spec.ga.generations, 250);
  EXPECT_EQ(spec.ga.selection, core::SelectionStrategy::kRank);
  EXPECT_FALSE(spec.ga.incremental_eval);
  EXPECT_EQ(spec.strategy.name, "islands");
  EXPECT_EQ(spec.strategy.params,
            (ParamMap{{"islands", "4"},
                      {"migration_interval", "10"},
                      {"migrants", "2"}}));
  EXPECT_DOUBLE_EQ(spec.remove_best_fraction, 0.05);
  EXPECT_EQ(spec.seeds.master, 99u);
  ASSERT_TRUE(spec.seeds.ga.has_value());
  EXPECT_EQ(*spec.seeds.ga, 1234u);
  EXPECT_FALSE(spec.seeds.data.has_value());
  EXPECT_FALSE(spec.outputs.history);
  EXPECT_EQ(spec.outputs.best_csv_path, "/tmp/best.csv");
}

TEST(JobSpecParseTest, JsonRoundTripIsIdentical) {
  JobSpec spec = JobSpec::FromJsonText(kFullSpec).ValueOrDie();
  std::string first = spec.ToJsonText();
  JobSpec reparsed = JobSpec::FromJsonText(first).ValueOrDie();
  std::string second = reparsed.ToJsonText();
  EXPECT_EQ(first, second);
}

TEST(JobSpecParseTest, DefaultsRoundTrip) {
  JobSpec defaults;
  JobSpec reparsed = JobSpec::FromJsonText(defaults.ToJsonText()).ValueOrDie();
  EXPECT_EQ(reparsed.ToJsonText(), defaults.ToJsonText());
}

TEST(JobSpecParseTest, UnknownTopLevelFieldIsNamed) {
  auto result = JobSpec::FromJsonText(R"({"nmae": "typo"})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nmae"), std::string::npos)
      << result.status().ToString();
}

TEST(JobSpecParseTest, UnknownNestedFieldIsNamedWithPath) {
  auto result = JobSpec::FromJsonText(R"({"ga": {"generatons": 5}})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ga.generatons"), std::string::npos)
      << result.status().ToString();
}

TEST(JobSpecParseTest, BadEnumNamesField) {
  auto aggregation =
      JobSpec::FromJsonText(R"({"measures": {"aggregation": "avg"}})");
  ASSERT_FALSE(aggregation.ok());
  EXPECT_NE(aggregation.status().message().find("measures.aggregation"),
            std::string::npos)
      << aggregation.status().ToString();

  auto selection = JobSpec::FromJsonText(R"({"ga": {"selection": "best"}})");
  ASSERT_FALSE(selection.ok());
  EXPECT_NE(selection.status().message().find("ga.selection"),
            std::string::npos);

  auto kind = JobSpec::FromJsonText(R"({"source": {"kind": "sql"}})");
  ASSERT_FALSE(kind.ok());
  EXPECT_NE(kind.status().message().find("source.kind"), std::string::npos);
}

TEST(JobSpecParseTest, TypeErrorsNameField) {
  auto result = JobSpec::FromJsonText(R"({"ga": {"generations": "many"}})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ga.generations"),
            std::string::npos);
}

TEST(JobSpecValidateTest, CsvRequiresPathAndAttributes) {
  auto missing_path = JobSpec::FromJsonText(R"({"source": {"kind": "csv"}})");
  ASSERT_FALSE(missing_path.ok());
  EXPECT_NE(missing_path.status().message().find("source.path"),
            std::string::npos);

  auto missing_attrs = JobSpec::FromJsonText(
      R"({"source": {"kind": "csv", "path": "x.csv"}})");
  ASSERT_FALSE(missing_attrs.ok());
  EXPECT_NE(missing_attrs.status().message().find("protected_attributes"),
            std::string::npos);
}

TEST(JobSpecValidateTest, CsvFieldsOnSyntheticSourceAreRejected) {
  // Forgetting "kind": "csv" must not silently run on synthetic data.
  auto result = JobSpec::FromJsonText(
      R"({"source": {"path": "census.csv"},
          "protected_attributes": ["EDUCATION"]})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("source.path"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("csv"), std::string::npos);

  auto separator =
      JobSpec::FromJsonText(R"({"source": {"separator": ";"}})");
  ASSERT_FALSE(separator.ok());
  EXPECT_NE(separator.status().message().find("source.separator"),
            std::string::npos);

  // And symmetrically: synthetic-only fields on a csv source.
  auto case_on_csv = JobSpec::FromJsonText(
      R"({"source": {"kind": "csv", "path": "x.csv", "case": "german"},
          "protected_attributes": ["A"]})");
  ASSERT_FALSE(case_on_csv.ok());
  EXPECT_NE(case_on_csv.status().message().find("source.case"),
            std::string::npos)
      << case_on_csv.status().ToString();
}

TEST(JobSpecValidateTest, UnknownMethodAndMeasureAreNamed) {
  auto method = JobSpec::FromJsonText(R"({"methods": [{"name": "noise"}]})");
  ASSERT_FALSE(method.ok());
  EXPECT_NE(method.status().message().find("methods[0].name"),
            std::string::npos);

  auto measure =
      JobSpec::FromJsonText(R"({"measures": {"enabled": ["CTBIL", "XIL"]}})");
  ASSERT_FALSE(measure.ok());
  EXPECT_NE(measure.status().message().find("measures.enabled[1]"),
            std::string::npos);
}

TEST(JobSpecValidateTest, BadMethodParameterIsNamed) {
  auto result = JobSpec::FromJsonText(
      R"({"methods": [{"name": "pram", "grid": {"retian": [0.5]}}]})");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("pram.retian"), std::string::npos)
      << result.status().ToString();
}

TEST(JobSpecValidateTest, StrategyErrorsAreNamed) {
  // Unknown strategy name, with the known names listed.
  auto unknown =
      JobSpec::FromJsonText(R"({"strategy": {"name": "annealing"}})");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("strategy.name"),
            std::string::npos)
      << unknown.status().ToString();
  EXPECT_NE(unknown.status().message().find("steady_state"),
            std::string::npos);

  // Unknown parameter key surfaces at validation, not mid-run.
  auto bad_key = JobSpec::FromJsonText(
      R"({"strategy": {"name": "steady_state", "params": {"mu": 4}}})");
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().message().find("steady_state.mu"),
            std::string::npos)
      << bad_key.status().ToString();

  // Out-of-range value.
  auto bad_value = JobSpec::FromJsonText(
      R"({"strategy": {"name": "islands", "params": {"islands": 0}}})");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("islands"), std::string::npos);

  // Unknown field inside the strategy object itself.
  auto bad_field = JobSpec::FromJsonText(
      R"({"strategy": {"nmae": "islands"}})");
  ASSERT_FALSE(bad_field.ok());
  EXPECT_NE(bad_field.status().message().find("strategy.nmae"),
            std::string::npos);
}

TEST(JobSpecParseTest, StrategyDefaultsToGenerational) {
  JobSpec spec = JobSpec::FromJsonText(R"({"name": "plain"})").ValueOrDie();
  EXPECT_EQ(spec.strategy.name, "generational");
  EXPECT_TRUE(spec.strategy.params.empty());
}

TEST(JobSpecValidateTest, NeedsBothMeasureKinds) {
  auto il_only =
      JobSpec::FromJsonText(R"({"measures": {"enabled": ["CTBIL", "DBIL"]}})");
  ASSERT_FALSE(il_only.ok());
  EXPECT_NE(il_only.status().message().find("disclosure-risk"),
            std::string::npos);

  auto dr_only =
      JobSpec::FromJsonText(R"({"measures": {"enabled": ["ID", "PRL"]}})");
  ASSERT_FALSE(dr_only.ok());
  EXPECT_NE(dr_only.status().message().find("information-loss"),
            std::string::npos);
}

TEST(JobSpecParseTest, LegacyMeasuresRebuildFractionAliasStillParses) {
  // The knob moved from measures.* into the fitness cost-model block; old
  // specs keep working and re-serialize into the new home.
  JobSpec spec = JobSpec::FromJsonText(
                     R"({"measures": {"delta_rebuild_fraction": 0.25}})")
                     .ValueOrDie();
  EXPECT_DOUBLE_EQ(spec.fitness.delta_rebuild_fraction, 0.25);
  std::string dumped = spec.ToJsonText();
  JobSpec reparsed = JobSpec::FromJsonText(dumped).ValueOrDie();
  EXPECT_DOUBLE_EQ(reparsed.fitness.delta_rebuild_fraction, 0.25);
  EXPECT_EQ(reparsed.ToJsonText(), dumped);
}

TEST(JobSpecValidateTest, FitnessRebuildTuningIsValidated) {
  auto global = JobSpec::FromJsonText(
      R"({"fitness": {"delta_rebuild_fraction": 1.5}})");
  ASSERT_FALSE(global.ok());
  EXPECT_NE(global.status().message().find("fitness.delta_rebuild_fraction"),
            std::string::npos);

  auto unknown = JobSpec::FromJsonText(
      R"({"fitness": {"rebuild_fractions": {"XIL": 0.5}}})");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("fitness.rebuild_fractions"),
            std::string::npos);

  auto range = JobSpec::FromJsonText(
      R"({"fitness": {"rebuild_fractions": {"DBRL": 0.0}}})");
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.status().message().find("DBRL"), std::string::npos);

  auto bad_type = JobSpec::FromJsonText(
      R"({"fitness": {"rebuild_fractions": {"DBRL": "fast"}}})");
  ASSERT_FALSE(bad_type.ok());

  auto unknown_key =
      JobSpec::FromJsonText(R"({"fitness": {"rebuild_cells": 10}})");
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_NE(unknown_key.status().message().find("fitness.rebuild_cells"),
            std::string::npos);
}

TEST(JobSpecTest, FitnessOptionsCarryRebuildTuning) {
  JobSpec spec;
  spec.fitness.delta_rebuild_fraction = 0.4;
  spec.fitness.rebuild_fractions = {{"RSRL", 0.3}};
  metrics::FitnessEvaluator::Options options = spec.FitnessOptions();
  EXPECT_DOUBLE_EQ(options.delta_rebuild_fraction, 0.4);
  ASSERT_EQ(options.measure_rebuild_fractions.size(), 1u);
  EXPECT_EQ(options.measure_rebuild_fractions[0].first, "RSRL");
  EXPECT_DOUBLE_EQ(options.measure_rebuild_fractions[0].second, 0.3);
}

TEST(JobSpecTest, FitnessOptionsReflectToggles) {
  JobSpec spec = JobSpec::FromJsonText(kFullSpec).ValueOrDie();
  metrics::FitnessEvaluator::Options options = spec.FitnessOptions();
  EXPECT_TRUE(options.use_ctbil);
  EXPECT_FALSE(options.use_dbil);
  EXPECT_TRUE(options.use_ebil);
  EXPECT_TRUE(options.use_id);
  EXPECT_TRUE(options.use_dbrl);
  EXPECT_FALSE(options.use_prl);
  EXPECT_FALSE(options.use_rsrl);
  EXPECT_EQ(options.aggregation, metrics::ScoreAggregation::kWeighted);
  EXPECT_EQ(options.ctbil_max_dimension, 3);
  EXPECT_EQ(options.prl_em_iterations, 25);
}

TEST(JobSpecTest, ExpandGridCrossProductFirstKeyOutermost) {
  MethodGridSpec method;
  method.name = "microaggregation";
  method.grid = {{"k", {"3", "5"}}, {"ordering", {"univariate", "sort0"}}};
  std::vector<ParamMap> combos = ExpandGrid(method);
  ASSERT_EQ(combos.size(), 4u);
  EXPECT_EQ(combos[0].at("k"), "3");
  EXPECT_EQ(combos[0].at("ordering"), "univariate");
  EXPECT_EQ(combos[1].at("k"), "3");
  EXPECT_EQ(combos[1].at("ordering"), "sort0");
  EXPECT_EQ(combos[2].at("k"), "5");
  EXPECT_EQ(combos[3].at("ordering"), "sort0");

  MethodGridSpec gridless;
  gridless.name = "dbrl";
  EXPECT_EQ(ExpandGrid(gridless).size(), 1u);
  EXPECT_TRUE(ExpandGrid(gridless)[0].empty());
}

TEST(JobSpecTest, SeedDerivationIsStable) {
  SeedSpec seeds;
  seeds.master = 7;
  uint64_t data = seeds.DataSeed();
  uint64_t protection = seeds.ProtectionSeed();
  uint64_t ga = seeds.GaSeed();
  EXPECT_NE(data, protection);
  EXPECT_NE(protection, ga);
  // Pinning one stage never changes the others.
  seeds.protection = 123;
  EXPECT_EQ(seeds.DataSeed(), data);
  EXPECT_EQ(seeds.GaSeed(), ga);
  // MakeExplicit pins the effective values.
  seeds.MakeExplicit();
  EXPECT_EQ(*seeds.data, data);
  EXPECT_EQ(*seeds.protection, 123u);
  EXPECT_EQ(*seeds.ga, ga);
}

TEST(MethodRegistryTest, AllBuiltInMethodsConstructibleByName) {
  auto& registry = protection::MethodRegistry::Global();
  const std::vector<std::string> expected = {
      "bottomcoding",     "globalrecoding", "hierarchicalrecoding",
      "microaggregation", "pram",           "rankswapping",
      "topcoding"};
  EXPECT_EQ(registry.Names(), expected);
  for (const std::string& name : expected) {
    auto method = registry.Create(name);
    ASSERT_TRUE(method.ok()) << name << ": " << method.status().ToString();
    EXPECT_EQ(method.ValueOrDie()->Name(), name);
  }
  // Lookup is case-insensitive; unknown names list what exists.
  EXPECT_TRUE(registry.Create("PRAM").ok());
  auto unknown = registry.Create("noise");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("microaggregation"),
            std::string::npos);
}

TEST(MethodRegistryTest, FactoriesApplyParameters) {
  auto& registry = protection::MethodRegistry::Global();
  auto micro = registry.Create(
      "microaggregation", {{"k", "7"}, {"ordering", "sum"}});
  ASSERT_TRUE(micro.ok());
  EXPECT_EQ(micro.ValueOrDie()->Params(), "k=7,order=sum");

  auto bad_value = registry.Create("microaggregation", {{"k", "lots"}});
  ASSERT_FALSE(bad_value.ok());
  EXPECT_NE(bad_value.status().message().find("microaggregation.k"),
            std::string::npos);

  auto bad_key = registry.Create("pram", {{"retention", "0.5"}});
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().message().find("pram.retention"),
            std::string::npos);
}

TEST(MeasureRegistryTest, AllBuiltInMeasuresConstructibleByName) {
  auto& registry = metrics::MeasureRegistry::Global();
  const std::vector<std::string> expected = {"CTBIL", "DBIL", "DBRL", "EBIL",
                                             "ID",    "PRL",  "RSRL"};
  EXPECT_EQ(registry.Names(), expected);
  int il = 0, dr = 0;
  for (const std::string& name : expected) {
    auto measure = registry.Create(name);
    ASSERT_TRUE(measure.ok()) << name << ": " << measure.status().ToString();
    EXPECT_EQ(measure.ValueOrDie()->Name(), name);
    (measure.ValueOrDie()->Kind() == metrics::MeasureKind::kInformationLoss
         ? il
         : dr) += 1;
  }
  EXPECT_EQ(il, 3);
  EXPECT_EQ(dr, 4);
  EXPECT_TRUE(registry.Create("ctbil").ok());
  EXPECT_FALSE(registry.Create("XIL").ok());
}

}  // namespace
}  // namespace api
}  // namespace evocat
