#include "core/operators.h"

#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "datagen/generator.h"

namespace evocat {
namespace core {
namespace {

using evocat::testing::BuildDataset;
using evocat::testing::CountDiffs;
using evocat::testing::TestAttr;

Dataset SmallData() {
  auto profile = datagen::UniformTestProfile("g", 50, {6, 4, 9});
  return datagen::Generate(profile, 55).ValueOrDie();
}

TEST(GenomeLayoutTest, LengthAndCellMapping) {
  GenomeLayout layout({2, 5, 7}, 10);
  EXPECT_EQ(layout.Length(), 30);
  // Record-major: flat 0..2 -> record 0 attrs {2,5,7}; flat 3 -> record 1.
  EXPECT_EQ(layout.Cell(0), (std::pair<int64_t, int>{0, 2}));
  EXPECT_EQ(layout.Cell(1), (std::pair<int64_t, int>{0, 5}));
  EXPECT_EQ(layout.Cell(2), (std::pair<int64_t, int>{0, 7}));
  EXPECT_EQ(layout.Cell(3), (std::pair<int64_t, int>{1, 2}));
  EXPECT_EQ(layout.Cell(29), (std::pair<int64_t, int>{9, 7}));
}

TEST(MutationTest, ChangesExactlyOneGene) {
  Dataset genome = SmallData();
  Dataset before = genome.Clone();
  GenomeLayout layout({0, 1, 2}, genome.num_rows());
  MutationOperator mutate(layout, /*exclude_current=*/true);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    auto record = mutate.Apply(&genome, &rng);
    EXPECT_EQ(CountDiffs(before, genome, {0, 1, 2}), 1) << "trial " << trial;
    EXPECT_NE(record.new_code, record.old_code);
    EXPECT_EQ(genome.Code(record.row, record.attr), record.new_code);
    // Undo for the next trial.
    genome.SetCode(record.row, record.attr, record.old_code);
  }
}

TEST(MutationTest, NewCodeAlwaysValid) {
  Dataset genome = SmallData();
  GenomeLayout layout({0, 1, 2}, genome.num_rows());
  MutationOperator mutate(layout, true);
  Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    mutate.Apply(&genome, &rng);
  }
  EXPECT_TRUE(genome.Validate().ok());
}

TEST(MutationTest, InclusiveModeCanKeepValue) {
  // With exclude_current=false over a domain of 2, roughly half the draws
  // repeat the current value.
  Dataset genome = BuildDataset({{"A", AttrKind::kNominal, 2}},
                                {{0}, {0}, {0}, {0}});
  GenomeLayout layout({0}, genome.num_rows());
  MutationOperator mutate(layout, /*exclude_current=*/false);
  Rng rng(3);
  int noops = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    auto record = mutate.Apply(&genome, &rng);
    if (record.new_code == record.old_code) ++noops;
    genome.SetCode(record.row, record.attr, 0);
  }
  EXPECT_NEAR(noops, 500, 80);
}

TEST(MutationTest, ExcludeCurrentCoversWholeRemainingDomain) {
  Dataset genome = BuildDataset({{"A", AttrKind::kNominal, 5}}, {{2}});
  GenomeLayout layout({0}, 1);
  MutationOperator mutate(layout, true);
  Rng rng(4);
  std::set<int32_t> seen;
  for (int trial = 0; trial < 300; ++trial) {
    auto record = mutate.Apply(&genome, &rng);
    seen.insert(record.new_code);
    genome.SetCode(0, 0, 2);
  }
  EXPECT_EQ(seen, (std::set<int32_t>{0, 1, 3, 4}));
}

TEST(MutationTest, OnlyTouchesProtectedAttrs) {
  Dataset genome = SmallData();
  Dataset before = genome.Clone();
  GenomeLayout layout({1}, genome.num_rows());  // only attr 1 is a gene
  MutationOperator mutate(layout, true);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) mutate.Apply(&genome, &rng);
  EXPECT_EQ(CountDiffs(before, genome, {0}), 0);
  EXPECT_EQ(CountDiffs(before, genome, {2}), 0);
  EXPECT_GT(CountDiffs(before, genome, {1}), 0);
}

TEST(CrossoverTest, SwapsExactlyTheSegment) {
  Dataset x = SmallData();
  auto profile = datagen::UniformTestProfile("g", 50, {6, 4, 9});
  Dataset y = datagen::Generate(profile, 56).ValueOrDie();
  // Same schema required for offspring comparability: rebuild y on x's
  // schema by copying codes.
  Dataset y_on_x = x.Clone();
  for (int a = 0; a < 3; ++a) {
    for (int64_t r = 0; r < x.num_rows(); ++r) {
      y_on_x.SetCode(r, a, y.Code(r, a) % x.schema().attribute(a).cardinality());
    }
  }

  GenomeLayout layout({0, 1, 2}, x.num_rows());
  CrossoverOperator cross(layout);
  Rng rng(7);
  Dataset z1, z2;
  auto record = cross.Apply(x, y_on_x, &z1, &z2, &rng);
  ASSERT_LE(record.s, record.r);

  for (int64_t flat = 0; flat < layout.Length(); ++flat) {
    auto [row, attr] = layout.Cell(flat);
    bool inside = flat >= record.s && flat <= record.r;
    if (inside) {
      EXPECT_EQ(z1.Code(row, attr), y_on_x.Code(row, attr));
      EXPECT_EQ(z2.Code(row, attr), x.Code(row, attr));
    } else {
      EXPECT_EQ(z1.Code(row, attr), x.Code(row, attr));
      EXPECT_EQ(z2.Code(row, attr), y_on_x.Code(row, attr));
    }
  }
}

TEST(CrossoverTest, SelfCrossIsIdentity) {
  Dataset x = SmallData();
  GenomeLayout layout({0, 1, 2}, x.num_rows());
  CrossoverOperator cross(layout);
  Rng rng(8);
  Dataset z1, z2;
  cross.Apply(x, x, &z1, &z2, &rng);
  EXPECT_TRUE(z1.SameCodes(x));
  EXPECT_TRUE(z2.SameCodes(x));
}

TEST(CrossoverTest, OffspringAreComplementary) {
  // Every gene of (z1, z2) is a permutation of the parents' genes at that
  // position: z1[i] + z2[i] == x[i] + y[i] cell-wise.
  Dataset x = SmallData();
  Dataset y = x.Clone();
  GenomeLayout layout({0, 1, 2}, x.num_rows());
  MutationOperator mutate(layout, true);
  Rng mrng(9);
  for (int i = 0; i < 60; ++i) mutate.Apply(&y, &mrng);

  CrossoverOperator cross(layout);
  Rng rng(10);
  Dataset z1, z2;
  cross.Apply(x, y, &z1, &z2, &rng);
  for (int64_t flat = 0; flat < layout.Length(); ++flat) {
    auto [row, attr] = layout.Cell(flat);
    EXPECT_EQ(z1.Code(row, attr) + z2.Code(row, attr),
              x.Code(row, attr) + y.Code(row, attr));
  }
}

TEST(CrossoverTest, SegmentBoundsCoverFullRange) {
  Dataset x = SmallData();
  GenomeLayout layout({0, 1, 2}, x.num_rows());
  CrossoverOperator cross(layout);
  Rng rng(11);
  int64_t min_s = layout.Length(), max_r = -1;
  bool saw_single = false;
  for (int trial = 0; trial < 400; ++trial) {
    Dataset z1, z2;
    auto record = cross.Apply(x, x, &z1, &z2, &rng);
    EXPECT_GE(record.s, 0);
    EXPECT_LE(record.r, layout.Length() - 1);
    EXPECT_LE(record.s, record.r);
    if (record.s == record.r) saw_single = true;
    min_s = std::min(min_s, record.s);
    max_r = std::max(max_r, record.r);
  }
  EXPECT_TRUE(saw_single);          // s == r single-value swap occurs
  EXPECT_LT(min_s, 10);             // draws reach the low end
  EXPECT_GT(max_r, layout.Length() - 10);  // and the high end
}

TEST(CrossoverTest, ParentsUntouched) {
  Dataset x = SmallData();
  Dataset y = SmallData();
  Dataset x_before = x.Clone();
  Dataset y_before = y.Clone();
  GenomeLayout layout({0, 1, 2}, x.num_rows());
  CrossoverOperator cross(layout);
  Rng rng(12);
  Dataset z1, z2;
  cross.Apply(x, y, &z1, &z2, &rng);
  EXPECT_TRUE(x.SameCodes(x_before));
  EXPECT_TRUE(y.SameCodes(y_before));
}

}  // namespace
}  // namespace core
}  // namespace evocat
