#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "datagen/generator.h"
#include "protection/population_builder.h"

namespace evocat {
namespace core {
namespace {

using evocat::testing::AllAttrs;

struct EngineFixture {
  Dataset original;
  std::vector<int> attrs;
  std::unique_ptr<metrics::FitnessEvaluator> evaluator;

  explicit EngineFixture(metrics::ScoreAggregation aggregation =
                             metrics::ScoreAggregation::kMean) {
    auto profile = datagen::UniformTestProfile("e", 120, {8, 6, 10});
    profile.attributes[0].kind = AttrKind::kOrdinal;
    for (auto& attr : profile.attributes) {
      attr.latent_weight = 0.4;
      attr.zipf_s = 0.5;
    }
    original = datagen::Generate(profile, 88).ValueOrDie();
    attrs = AllAttrs(original);
    metrics::FitnessEvaluator::Options options;
    options.aggregation = aggregation;
    evaluator = std::move(
        metrics::FitnessEvaluator::Create(original, attrs, options))
        .ValueOrDie();
  }

  std::vector<Individual> SeedPopulation(uint64_t seed, size_t count = 12) {
    protection::PopulationSpec spec;
    spec.microagg_ks = {3, 5};
    spec.microagg_orderings = {protection::MicroOrdering::kUnivariate};
    spec.bottom_fractions = {0.2};
    spec.top_fractions = {0.2};
    spec.recoding_group_sizes = {2, 3};
    spec.rankswap_percents = {5, 10, 15};
    spec.pram_retains = {0.8, 0.5, 0.3};
    auto files =
        protection::BuildProtections(original, attrs, spec, seed).ValueOrDie();
    std::vector<Individual> seeds;
    for (auto& file : files) {
      Individual individual;
      individual.data = std::move(file.data);
      individual.origin = std::move(file.method_label);
      seeds.push_back(std::move(individual));
    }
    seeds.resize(std::min(count, seeds.size()));
    return seeds;
  }
};

TEST(PopulationTest, SortAndStats) {
  Population population;
  for (double score : {30.0, 10.0, 20.0}) {
    Individual individual;
    individual.fitness.score = score;
    population.members().push_back(std::move(individual));
  }
  population.SortByScore();
  EXPECT_DOUBLE_EQ(population.best().score(), 10.0);
  EXPECT_DOUBLE_EQ(population.worst().score(), 30.0);
  EXPECT_DOUBLE_EQ(population.MinScore(), 10.0);
  EXPECT_DOUBLE_EQ(population.MeanScore(), 20.0);
  EXPECT_DOUBLE_EQ(population.MaxScore(), 30.0);
  EXPECT_EQ(population.Scores(), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(EngineTest, ValidatesConfigAndInput) {
  EngineFixture fixture;
  GaConfig config;

  // Too-small population.
  EvolutionEngine engine(fixture.evaluator.get(), config);
  EXPECT_FALSE(engine.Run(fixture.SeedPopulation(1, 1)).ok());

  // Bad mutation rate.
  config.mutation_rate = 1.5;
  EXPECT_FALSE(EvolutionEngine(fixture.evaluator.get(), config)
                   .Run(fixture.SeedPopulation(1))
                   .ok());
  config.mutation_rate = 0.5;

  // Bad leader group.
  config.leader_group_size = 0;
  EXPECT_FALSE(EvolutionEngine(fixture.evaluator.get(), config)
                   .Run(fixture.SeedPopulation(1))
                   .ok());
  config.leader_group_size = 5;

  // Negative generations.
  config.generations = -1;
  EXPECT_FALSE(EvolutionEngine(fixture.evaluator.get(), config)
                   .Run(fixture.SeedPopulation(1))
                   .ok());
}

TEST(EngineTest, ZeroGenerationsJustEvaluates) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 0;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  auto result = std::move(engine.Run(fixture.SeedPopulation(2))).ValueOrDie();
  EXPECT_TRUE(result.history.empty());
  EXPECT_EQ(result.population.size(), 12u);
  // Fitness was filled in and the population is sorted.
  for (size_t i = 1; i < result.population.size(); ++i) {
    EXPECT_LE(result.population[i - 1].score(), result.population[i].score());
  }
}

TEST(EngineTest, MinScoreNeverWorsens) {
  // Elitism + deterministic crowding both replace only on strict
  // improvement, so the population minimum must be non-increasing.
  EngineFixture fixture;
  GaConfig config;
  config.generations = 120;
  config.seed = 7;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  auto result = std::move(engine.Run(fixture.SeedPopulation(3))).ValueOrDie();
  double last = 1e100;
  for (const auto& record : result.history) {
    EXPECT_LE(record.min_score, last + 1e-12);
    last = record.min_score;
  }
}

TEST(EngineTest, MeanScoreNeverWorsens) {
  // Every accepted replacement strictly lowers one member's score, so the
  // mean is also non-increasing under this replacement scheme.
  EngineFixture fixture;
  GaConfig config;
  config.generations = 120;
  config.seed = 8;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  auto result = std::move(engine.Run(fixture.SeedPopulation(4))).ValueOrDie();
  double last = 1e100;
  for (const auto& record : result.history) {
    EXPECT_LE(record.mean_score, last + 1e-9);
    last = record.mean_score;
  }
}

TEST(EngineTest, DeterministicGivenSeed) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 60;
  config.seed = 99;
  config.parallel_offspring_eval = false;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  auto a = std::move(engine.Run(fixture.SeedPopulation(5))).ValueOrDie();
  auto b = std::move(engine.Run(fixture.SeedPopulation(5))).ValueOrDie();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].min_score, b.history[i].min_score);
    EXPECT_DOUBLE_EQ(a.history[i].mean_score, b.history[i].mean_score);
    EXPECT_DOUBLE_EQ(a.history[i].max_score, b.history[i].max_score);
    EXPECT_EQ(a.history[i].op, b.history[i].op);
  }
  EXPECT_DOUBLE_EQ(a.population.best().score(), b.population.best().score());
}

TEST(EngineTest, DifferentSeedsDiverge) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 60;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  config.seed = 1;
  auto a = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                         .Run(fixture.SeedPopulation(5)))
               .ValueOrDie();
  config.seed = 2;
  auto b = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                         .Run(fixture.SeedPopulation(5)))
               .ValueOrDie();
  bool any_diff = false;
  for (size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].op != b.history[i].op ||
        a.history[i].mean_score != b.history[i].mean_score) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(EngineTest, OperatorMixTracksMutationRate) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 200;
  config.seed = 13;

  config.mutation_rate = 1.0;
  auto all_mutation = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                                    .Run(fixture.SeedPopulation(6)))
                          .ValueOrDie();
  EXPECT_EQ(all_mutation.stats.mutation_generations, 200);
  EXPECT_EQ(all_mutation.stats.crossover_generations, 0);

  config.mutation_rate = 0.0;
  auto all_crossover =
      std::move(EvolutionEngine(fixture.evaluator.get(), config)
                    .Run(fixture.SeedPopulation(6)))
          .ValueOrDie();
  EXPECT_EQ(all_crossover.stats.mutation_generations, 0);
  EXPECT_EQ(all_crossover.stats.crossover_generations, 200);

  config.mutation_rate = 0.5;
  auto mixed = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                             .Run(fixture.SeedPopulation(6)))
                   .ValueOrDie();
  EXPECT_GT(mixed.stats.mutation_generations, 60);
  EXPECT_GT(mixed.stats.crossover_generations, 60);
}

TEST(EngineTest, HistoryBookkeepingConsistent) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 80;
  config.seed = 21;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  auto result = std::move(engine.Run(fixture.SeedPopulation(7))).ValueOrDie();
  ASSERT_EQ(result.history.size(), 80u);
  int64_t evals = 0;
  for (size_t i = 0; i < result.history.size(); ++i) {
    const auto& record = result.history[i];
    EXPECT_EQ(record.generation, static_cast<int>(i) + 1);
    EXPECT_LE(record.min_score, record.mean_score);
    EXPECT_LE(record.mean_score, record.max_score);
    EXPECT_EQ(record.evaluations,
              record.op == OperatorKind::kMutation ? 1 : 2);
    evals += record.evaluations;
  }
  EXPECT_EQ(result.stats.offspring_evaluated, evals);
  EXPECT_EQ(result.stats.mutation_generations +
                result.stats.crossover_generations,
            80);
}

TEST(EngineTest, EarlyStopOnStagnation) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 500;
  config.no_improvement_window = 10;
  config.seed = 17;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  auto result = std::move(engine.Run(fixture.SeedPopulation(8))).ValueOrDie();
  EXPECT_LT(result.history.size(), 500u);  // stopped early
  // The last window of generations shows no min-score improvement.
  size_t n = result.history.size();
  ASSERT_GE(n, 10u);
  double window_start_min = result.history[n - 10].min_score;
  EXPECT_DOUBLE_EQ(result.history[n - 1].min_score, window_start_min);
}

TEST(EngineTest, CallbackSeesEveryGeneration) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 30;
  config.seed = 19;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  int calls = 0;
  auto result = std::move(engine.Run(
                              fixture.SeedPopulation(9),
                              [&](const GenerationRecord& record,
                                  const Population& population) {
                                ++calls;
                                EXPECT_EQ(record.generation, calls);
                                EXPECT_EQ(population.size(), 12u);
                              }))
                    .ValueOrDie();
  EXPECT_EQ(calls, 30);
}

TEST(EngineTest, RejectsIncomparableIndividual) {
  EngineFixture fixture;
  GaConfig config;
  auto seeds = fixture.SeedPopulation(10);
  // Corrupt one individual with a foreign dataset (different schema).
  auto profile = datagen::UniformTestProfile("other", 120, {8, 6, 10});
  seeds[0].data = datagen::Generate(profile, 1).ValueOrDie();
  EvolutionEngine engine(fixture.evaluator.get(), config);
  EXPECT_FALSE(engine.Run(std::move(seeds)).ok());
}

TEST(EngineTest, MaxAggregationReducesImbalance) {
  // Under Eq. 2 the best individual's |IL - DR| gap should be modest after
  // evolution — the paper's §3.2 observation.
  EngineFixture fixture(metrics::ScoreAggregation::kMax);
  GaConfig config;
  config.generations = 150;
  config.seed = 23;
  EvolutionEngine engine(fixture.evaluator.get(), config);
  auto result = std::move(engine.Run(fixture.SeedPopulation(11))).ValueOrDie();
  const auto& best = result.population.best();
  EXPECT_LE(std::fabs(best.fitness.il - best.fitness.dr), 25.0);
}

TEST(EngineTest, IncrementalAndFullEvaluationAgree) {
  // The delta path must retrace the full-evaluation run: same operator
  // sequence, same acceptances, scores equal to numerical tolerance.
  EngineFixture fixture;
  GaConfig config;
  config.generations = 60;
  config.seed = 31;
  config.incremental_eval = true;
  auto incremental = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                                   .Run(fixture.SeedPopulation(13)))
                         .ValueOrDie();
  config.incremental_eval = false;
  auto full = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                            .Run(fixture.SeedPopulation(13)))
                  .ValueOrDie();
  ASSERT_EQ(incremental.history.size(), full.history.size());
  for (size_t i = 0; i < incremental.history.size(); ++i) {
    EXPECT_EQ(incremental.history[i].op, full.history[i].op);
    EXPECT_NEAR(incremental.history[i].min_score, full.history[i].min_score,
                1e-6);
    EXPECT_NEAR(incremental.history[i].mean_score, full.history[i].mean_score,
                1e-6);
  }
  EXPECT_NEAR(incremental.population.best().score(),
              full.population.best().score(), 1e-6);
}

TEST(EngineTest, ParallelAndSerialOffspringEvalAgree) {
  EngineFixture fixture;
  GaConfig config;
  config.generations = 40;
  config.seed = 29;
  config.parallel_offspring_eval = true;
  auto parallel = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                                .Run(fixture.SeedPopulation(12)))
                      .ValueOrDie();
  config.parallel_offspring_eval = false;
  auto serial = std::move(EvolutionEngine(fixture.evaluator.get(), config)
                              .Run(fixture.SeedPopulation(12)))
                    .ValueOrDie();
  ASSERT_EQ(parallel.history.size(), serial.history.size());
  for (size_t i = 0; i < parallel.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.history[i].mean_score,
                     serial.history[i].mean_score);
  }
}

}  // namespace
}  // namespace core
}  // namespace evocat
