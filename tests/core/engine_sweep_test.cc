// Parameterized sweep of the engine's configuration space: every selection
// strategy crossed with every score aggregation must preserve the core
// invariants (monotone min/mean, bounded scores, bookkeeping consistency).

#include <memory>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "core/engine.h"
#include "datagen/generator.h"
#include "protection/population_builder.h"

namespace evocat {
namespace core {
namespace {

using evocat::testing::AllAttrs;

struct SweepParam {
  SelectionStrategy selection;
  metrics::ScoreAggregation aggregation;
};

class EngineSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static Dataset MakeOriginal() {
    auto profile = datagen::UniformTestProfile("s", 100, {8, 6, 10});
    profile.attributes[0].kind = AttrKind::kOrdinal;
    for (auto& attr : profile.attributes) {
      attr.latent_weight = 0.4;
      attr.zipf_s = 0.5;
    }
    return datagen::Generate(profile, 66).ValueOrDie();
  }

  static std::vector<Individual> MakeSeeds(const Dataset& original,
                                           const std::vector<int>& attrs) {
    protection::PopulationSpec spec;
    spec.microagg_ks = {3, 6};
    spec.microagg_orderings = {protection::MicroOrdering::kUnivariate};
    spec.bottom_fractions = {0.25};
    spec.top_fractions = {0.25};
    spec.recoding_group_sizes = {3};
    spec.rankswap_percents = {8, 16};
    spec.pram_retains = {0.7, 0.3};
    auto files =
        protection::BuildProtections(original, attrs, spec, 13).ValueOrDie();
    std::vector<Individual> seeds;
    for (auto& file : files) {
      Individual individual;
      individual.data = std::move(file.data);
      individual.origin = std::move(file.method_label);
      seeds.push_back(std::move(individual));
    }
    return seeds;
  }
};

TEST_P(EngineSweepTest, InvariantsHoldForEveryConfiguration) {
  const auto& param = GetParam();
  Dataset original = MakeOriginal();
  auto attrs = AllAttrs(original);

  metrics::FitnessEvaluator::Options fitness_options;
  fitness_options.aggregation = param.aggregation;
  fitness_options.prl_em_iterations = 20;
  auto evaluator = std::move(metrics::FitnessEvaluator::Create(
                                 original, attrs, fitness_options))
                       .ValueOrDie();

  GaConfig config;
  config.generations = 80;
  config.selection = param.selection;
  config.seed = 3;
  EvolutionEngine engine(evaluator.get(), config);
  auto result = std::move(engine.Run(MakeSeeds(original, attrs))).ValueOrDie();

  ASSERT_EQ(result.history.size(), 80u);
  double last_min = 1e100, last_mean = 1e100;
  for (const auto& record : result.history) {
    // Monotone non-increasing min and mean (elitist replacement).
    EXPECT_LE(record.min_score, last_min + 1e-12);
    EXPECT_LE(record.mean_score, last_mean + 1e-9);
    last_min = record.min_score;
    last_mean = record.mean_score;
    // Scores bounded on the 0..100 scale.
    EXPECT_GE(record.min_score, 0.0);
    EXPECT_LE(record.max_score, 100.0);
  }
  // Every survivor's breakdown agrees with its score under this aggregation.
  for (const auto& member : result.population.members()) {
    EXPECT_NEAR(member.fitness.score,
                metrics::AggregateScore(param.aggregation, member.fitness.il,
                                        member.fitness.dr),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, EngineSweepTest,
    ::testing::Values(
        SweepParam{SelectionStrategy::kInverseScore,
                   metrics::ScoreAggregation::kMean},
        SweepParam{SelectionStrategy::kInverseScore,
                   metrics::ScoreAggregation::kMax},
        SweepParam{SelectionStrategy::kInverseScore,
                   metrics::ScoreAggregation::kEuclidean},
        SweepParam{SelectionStrategy::kInverseScore,
                   metrics::ScoreAggregation::kWeighted},
        SweepParam{SelectionStrategy::kLiteralScore,
                   metrics::ScoreAggregation::kMean},
        SweepParam{SelectionStrategy::kLiteralScore,
                   metrics::ScoreAggregation::kMax},
        SweepParam{SelectionStrategy::kRank, metrics::ScoreAggregation::kMean},
        SweepParam{SelectionStrategy::kRank, metrics::ScoreAggregation::kMax},
        SweepParam{SelectionStrategy::kUniform,
                   metrics::ScoreAggregation::kMean},
        SweepParam{SelectionStrategy::kUniform,
                   metrics::ScoreAggregation::kMax}));

}  // namespace
}  // namespace core
}  // namespace evocat
