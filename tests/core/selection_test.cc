#include "core/selection.h"

#include <cmath>

#include <gtest/gtest.h>

namespace evocat {
namespace core {
namespace {

TEST(SelectionNamesTest, Stable) {
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kInverseScore),
               "inverse");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kLiteralScore),
               "literal");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kRank), "rank");
  EXPECT_STREQ(SelectionStrategyToString(SelectionStrategy::kUniform),
               "uniform");
}

TEST(SelectionWeightsTest, InverseFavoursLowScores) {
  SelectionPolicy policy(SelectionStrategy::kInverseScore);
  auto weights = policy.Weights({10.0, 20.0, 40.0});
  EXPECT_GT(weights[0], weights[1]);
  EXPECT_GT(weights[1], weights[2]);
  EXPECT_DOUBLE_EQ(weights[0], 0.1);
}

TEST(SelectionWeightsTest, LiteralFavoursHighScores) {
  SelectionPolicy policy(SelectionStrategy::kLiteralScore);
  auto weights = policy.Weights({10.0, 20.0, 40.0});
  EXPECT_LT(weights[0], weights[1]);
  EXPECT_LT(weights[1], weights[2]);
  EXPECT_DOUBLE_EQ(weights[2], 40.0);
}

TEST(SelectionWeightsTest, RankIgnoresScoreMagnitudes) {
  SelectionPolicy policy(SelectionStrategy::kRank);
  auto weights = policy.Weights({1.0, 999.0, 1000.0});
  EXPECT_DOUBLE_EQ(weights[0], 3.0);
  EXPECT_DOUBLE_EQ(weights[1], 2.0);
  EXPECT_DOUBLE_EQ(weights[2], 1.0);
}

TEST(SelectionWeightsTest, UniformIsFlat) {
  SelectionPolicy policy(SelectionStrategy::kUniform);
  auto weights = policy.Weights({5.0, 50.0});
  EXPECT_DOUBLE_EQ(weights[0], weights[1]);
}

TEST(SelectionWeightsTest, ZeroScoresAreSafe) {
  SelectionPolicy inverse(SelectionStrategy::kInverseScore);
  auto weights = inverse.Weights({0.0, 10.0});
  EXPECT_TRUE(std::isfinite(weights[0]));
  EXPECT_GT(weights[0], weights[1]);

  SelectionPolicy literal(SelectionStrategy::kLiteralScore);
  auto lw = literal.Weights({0.0, 0.0});
  EXPECT_GT(lw[0], 0.0);  // still selectable
}

TEST(SelectionDrawTest, InverseEmpiricalFrequencies) {
  SelectionPolicy policy(SelectionStrategy::kInverseScore);
  std::vector<double> scores = {10.0, 30.0};  // weights 0.1 vs 0.0333 -> 3:1
  Rng rng(1);
  int first = 0;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    if (policy.Select(scores, &rng) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / kDraws, 0.75, 0.02);
}

TEST(SelectionDrawTest, LiteralEmpiricalFrequencies) {
  SelectionPolicy policy(SelectionStrategy::kLiteralScore);
  std::vector<double> scores = {10.0, 30.0};  // 1:3
  Rng rng(2);
  int first = 0;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    if (policy.Select(scores, &rng) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / kDraws, 0.25, 0.02);
}

TEST(SelectionDrawTest, AllIndicesReachable) {
  for (auto strategy :
       {SelectionStrategy::kInverseScore, SelectionStrategy::kLiteralScore,
        SelectionStrategy::kRank, SelectionStrategy::kUniform}) {
    SelectionPolicy policy(strategy);
    std::vector<double> scores = {5.0, 10.0, 20.0, 40.0};
    Rng rng(3);
    std::vector<int> hits(scores.size(), 0);
    for (int i = 0; i < 5000; ++i) hits[policy.Select(scores, &rng)] += 1;
    for (size_t j = 0; j < hits.size(); ++j) {
      EXPECT_GT(hits[j], 0) << "strategy "
                            << SelectionStrategyToString(strategy) << " index "
                            << j;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace evocat
