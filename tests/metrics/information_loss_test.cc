// Behaviour of the three information-loss measures: zero on identity,
// bounds, monotonicity under growing perturbation, and measure-specific
// semantics (CTBIL on distributions, DBIL on cells, EBIL on determinism).

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "datagen/generator.h"
#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/distance.h"
#include "metrics/ebil.h"
#include "protection/pram.h"

namespace evocat {
namespace metrics {
namespace {

using evocat::testing::AllAttrs;
using evocat::testing::BuildDataset;
using evocat::testing::TestAttr;

Dataset TestData() {
  auto profile = datagen::UniformTestProfile("m", 300, {8, 5, 12});
  profile.attributes[0].kind = AttrKind::kOrdinal;
  profile.attributes[0].zipf_s = 0.8;
  profile.attributes[2].zipf_s = 0.6;
  return datagen::Generate(profile, 21).ValueOrDie();
}

// ---------------------------------------------------------------------------
// ValueDistance / DistanceTables

TEST(ValueDistanceTest, NominalZeroOne) {
  Attribute attr("N", AttrKind::kNominal);
  for (int c = 0; c < 4; ++c) attr.dictionary().GetOrAdd("c" + std::to_string(c));
  EXPECT_DOUBLE_EQ(ValueDistance(attr, 2, 2), 0.0);
  EXPECT_DOUBLE_EQ(ValueDistance(attr, 0, 3), 1.0);
  EXPECT_DOUBLE_EQ(ValueDistance(attr, 1, 2), 1.0);
}

TEST(ValueDistanceTest, OrdinalNormalizedRankGap) {
  Attribute attr("O", AttrKind::kOrdinal);
  for (int c = 0; c < 5; ++c) attr.dictionary().GetOrAdd("c" + std::to_string(c));
  EXPECT_DOUBLE_EQ(ValueDistance(attr, 0, 4), 1.0);
  EXPECT_DOUBLE_EQ(ValueDistance(attr, 1, 3), 0.5);
  EXPECT_DOUBLE_EQ(ValueDistance(attr, 2, 2), 0.0);
}

TEST(DistanceTablesTest, MatchesValueDistance) {
  Dataset dataset = TestData();
  DistanceTables tables(dataset, {0, 1, 2});
  for (int i = 0; i < 3; ++i) {
    const Attribute& attr = dataset.schema().attribute(i);
    for (int32_t a = 0; a < attr.cardinality(); ++a) {
      for (int32_t b = 0; b < attr.cardinality(); ++b) {
        EXPECT_NEAR(tables.At(static_cast<size_t>(i), a, b),
                    ValueDistance(attr, a, b), 1e-6);
      }
    }
  }
}

TEST(DistanceTablesTest, RecordDistanceIsMeanOfValueDistances) {
  Dataset x = BuildDataset({{"A", AttrKind::kNominal, 3},
                            {"B", AttrKind::kOrdinal, 5}},
                           {{0, 0}});
  Dataset y = BuildDataset({{"A", AttrKind::kNominal, 3},
                            {"B", AttrKind::kOrdinal, 5}},
                           {{1, 2}});
  // Different schemas are fine for the table as long as cardinalities align;
  // build tables over x's schema.
  DistanceTables tables(x, {0, 1});
  EXPECT_DOUBLE_EQ(tables.RecordDistance(x, 0, y, 0), (1.0 + 0.5) / 2.0);
}

// ---------------------------------------------------------------------------
// Identity behaviour (all IL measures must be 0 on an identical copy)

TEST(InformationLossTest, ZeroOnIdentity) {
  Dataset original = TestData();
  Dataset copy = original.Clone();
  auto attrs = AllAttrs(original);
  EXPECT_NEAR(CtbIl(2).Compute(original, copy, attrs).ValueOrDie(), 0.0, 1e-12);
  EXPECT_NEAR(DbIl().Compute(original, copy, attrs).ValueOrDie(), 0.0, 1e-12);
  EXPECT_NEAR(EbIl().Compute(original, copy, attrs).ValueOrDie(), 0.0, 1e-12);
}

// Growing PRAM perturbation must not decrease any IL measure (statistically;
// we test a strongly separated pair of retention levels).
class IlMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(IlMonotonicityTest, MorePerturbationMoreLoss) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  Rng rng_mild(3), rng_harsh(3);
  Dataset mild = protection::Pram(0.9)
                     .Protect(original, attrs, &rng_mild)
                     .ValueOrDie();
  Dataset harsh = protection::Pram(0.2)
                      .Protect(original, attrs, &rng_harsh)
                      .ValueOrDie();
  double mild_loss = 0, harsh_loss = 0;
  switch (GetParam()) {
    case 0:
      mild_loss = CtbIl(2).Compute(original, mild, attrs).ValueOrDie();
      harsh_loss = CtbIl(2).Compute(original, harsh, attrs).ValueOrDie();
      break;
    case 1:
      mild_loss = DbIl().Compute(original, mild, attrs).ValueOrDie();
      harsh_loss = DbIl().Compute(original, harsh, attrs).ValueOrDie();
      break;
    case 2:
      mild_loss = EbIl().Compute(original, mild, attrs).ValueOrDie();
      harsh_loss = EbIl().Compute(original, harsh, attrs).ValueOrDie();
      break;
  }
  EXPECT_LT(mild_loss, harsh_loss);
  EXPECT_GE(mild_loss, 0.0);
  EXPECT_LE(harsh_loss, 100.0);
}

INSTANTIATE_TEST_SUITE_P(AllIlMeasures, IlMonotonicityTest,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// CTBIL specifics

TEST(CtbIlTest, SwapPreservingMarginalsHidesFromDim1) {
  // Swapping values between records preserves univariate tables exactly, so
  // CTBIL(dim=1) is 0 while CTBIL(dim=2) sees the broken joint.
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 2},
                                   {"B", AttrKind::kNominal, 2}},
                                  {{0, 0}, {1, 1}, {0, 0}, {1, 1}});
  Dataset masked = original.Clone();
  // Swap attribute A of records 0 and 1: marginals intact, joint changed.
  masked.SetCode(0, 0, 1);
  masked.SetCode(1, 0, 0);
  EXPECT_DOUBLE_EQ(CtbIl(1).Compute(original, masked, {0, 1}).ValueOrDie(), 0.0);
  EXPECT_GT(CtbIl(2).Compute(original, masked, {0, 1}).ValueOrDie(), 0.0);
}

TEST(CtbIlTest, SingleCellChangeScoresExactly) {
  // n=4 records, one attribute; change one cell: L1 = 2 (one cell -1, one
  // +1), denom = 2n = 8 -> 25 on the 0..100 scale.
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 3}},
                                  {{0}, {0}, {1}, {2}});
  Dataset masked = original.Clone();
  masked.SetCode(0, 0, 1);
  EXPECT_DOUBLE_EQ(CtbIl(1).Compute(original, masked, {0}).ValueOrDie(), 25.0);
}

TEST(CtbIlTest, RejectsBadDimension) {
  Dataset original = TestData();
  EXPECT_FALSE(CtbIl(0).Compute(original, original, {0}).ok());
}

TEST(CtbIlTest, DimensionCapStopsAtAvailableAttrs) {
  Dataset original = TestData();
  Dataset copy = original.Clone();
  // max_dimension larger than attrs: must not crash, still 0 on identity.
  EXPECT_NEAR(CtbIl(4).Compute(original, copy, {0, 1}).ValueOrDie(), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// DBIL specifics

TEST(DbIlTest, SingleNominalChangeScoresExactly) {
  // 4 records x 1 nominal attr, one change -> 100 * (1/4) = 25.
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 3}},
                                  {{0}, {0}, {1}, {2}});
  Dataset masked = original.Clone();
  masked.SetCode(0, 0, 1);
  EXPECT_DOUBLE_EQ(DbIl().Compute(original, masked, {0}).ValueOrDie(), 25.0);
}

TEST(DbIlTest, OrdinalChangesWeightedByRankGap) {
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 5}},
                                  {{0}, {0}, {0}, {0}});
  Dataset masked = original.Clone();
  masked.SetCode(0, 0, 4);  // distance 1.0
  masked.SetCode(1, 0, 1);  // distance 0.25
  EXPECT_DOUBLE_EQ(DbIl().Compute(original, masked, {0}).ValueOrDie(),
                   100.0 * (1.0 + 0.25) / 4.0);
}

TEST(DbIlTest, MaximalNominalScrambleIsHundred) {
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 2}},
                                  {{0}, {0}, {0}});
  Dataset masked = original.Clone();
  for (int64_t r = 0; r < masked.num_rows(); ++r) masked.SetCode(r, 0, 1);
  EXPECT_DOUBLE_EQ(DbIl().Compute(original, masked, {0}).ValueOrDie(), 100.0);
}

// ---------------------------------------------------------------------------
// EBIL specifics

TEST(EbIlTest, InjectiveRecodingIsZero) {
  // A bijective relabelling keeps the original fully determined by the
  // masked value: conditional entropy 0.
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 3}},
                                  {{0}, {1}, {2}, {0}});
  Dataset masked = original.Clone();
  for (int64_t r = 0; r < masked.num_rows(); ++r) {
    masked.SetCode(r, 0, (original.Code(r, 0) + 1) % 3);
  }
  EXPECT_NEAR(EbIl().Compute(original, masked, {0}).ValueOrDie(), 0.0, 1e-12);
}

TEST(EbIlTest, TotalCollapseIsMarginalEntropy) {
  // Masking everything to one category leaves H(O) bits of uncertainty:
  // EBIL = 100 * H(O) / log2(card). Uniform over 4 of 4 categories -> 100.
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 4}},
                                  {{0}, {1}, {2}, {3}});
  Dataset masked = original.Clone();
  for (int64_t r = 0; r < masked.num_rows(); ++r) masked.SetCode(r, 0, 0);
  EXPECT_NEAR(EbIl().Compute(original, masked, {0}).ValueOrDie(), 100.0, 1e-9);
}

TEST(EbIlTest, PartialCollapseScoresBetween) {
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 4}},
                                  {{0}, {1}, {2}, {3}});
  Dataset masked = original.Clone();
  masked.SetCode(1, 0, 0);  // merge {0,1} -> 0; {2,3} untouched
  double loss = EbIl().Compute(original, masked, {0}).ValueOrDie();
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 100.0);
}

// ---------------------------------------------------------------------------
// Validation of the shared measure interface

TEST(MeasureValidationTest, RejectsIncomparableInputs) {
  Dataset original = TestData();
  CtbIl measure(2);
  // Different row count.
  Dataset short_copy = BuildDataset({{"a0", AttrKind::kNominal, 8}}, {{0}});
  EXPECT_FALSE(measure.Compute(original, short_copy, {0}).ok());
  // Different schema object (same shape, different dictionaries).
  Dataset other = TestData();
  Dataset rebuilt = BuildDataset({{"a0", AttrKind::kNominal, 8},
                                  {"a1", AttrKind::kNominal, 5},
                                  {"a2", AttrKind::kNominal, 12}},
                                 {});
  EXPECT_FALSE(measure.Compute(original, rebuilt, {0}).ok());
  // Bad attribute index.
  EXPECT_FALSE(measure.Compute(original, original.Clone(), {99}).ok());
  // Empty attrs.
  EXPECT_FALSE(measure.Compute(original, original.Clone(), {}).ok());
}

}  // namespace
}  // namespace metrics
}  // namespace evocat
