// Randomized delta-vs-full equivalence: long sequences of mutations and
// crossover-style segment swaps are applied to a masked file while each
// measure's incremental state tracks them; after every batch the state's
// score must match a from-scratch Compute() within 1e-9, and Revert() must
// restore the previous score exactly. Also exercises the automatic
// full-rebuild fallback for oversized batches and the COW dataset plumbing
// the engine relies on.

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"
#include "core/operators.h"
#include "datagen/generator.h"
#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/fitness.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"
#include "protection/pram.h"

namespace evocat {
namespace metrics {
namespace {

using evocat::testing::AllAttrs;

constexpr double kTol = 1e-9;

struct World {
  Dataset original;
  Dataset masked;
  std::vector<int> attrs;
};

World MakeWorldWithCards(uint64_t seed, int64_t rows,
                         const std::vector<int>& cards) {
  auto profile = datagen::UniformTestProfile("d", rows, cards);
  if (cards.size() > 1) profile.attributes[1].kind = AttrKind::kOrdinal;
  World world;
  world.original = datagen::Generate(profile, seed).ValueOrDie();
  world.attrs = AllAttrs(world.original);
  Rng rng(seed + 1);
  world.masked = protection::Pram(0.6)
                     .Protect(world.original, world.attrs, &rng)
                     .ValueOrDie();
  return world;
}

World MakeWorld(uint64_t seed, int64_t rows = 120) {
  return MakeWorldWithCards(seed, rows, {7, 5, 9});
}

/// Applies a random batch of 1..max_cells distinct-cell changes to `masked`
/// and returns the deltas (old -> new per cell).
std::vector<CellDelta> RandomBatch(Dataset* masked,
                                   const std::vector<int>& attrs, Rng* rng,
                                   int max_cells) {
  int cells = static_cast<int>(rng->UniformInt(1, max_cells));
  std::map<std::pair<int64_t, int>, CellDelta> unique;
  for (int c = 0; c < cells; ++c) {
    int64_t row = static_cast<int64_t>(rng->UniformIndex(
        static_cast<size_t>(masked->num_rows())));
    int attr = attrs[rng->UniformIndex(attrs.size())];
    int32_t card = masked->schema().attribute(attr).cardinality();
    auto new_code = static_cast<int32_t>(rng->UniformInt(0, card - 1));
    auto key = std::make_pair(row, attr);
    auto it = unique.find(key);
    if (it == unique.end()) {
      CellDelta delta{row, attr, masked->Code(row, attr), new_code};
      unique.emplace(key, delta);
    } else {
      it->second.new_code = new_code;  // collapse repeat writes to one delta
    }
  }
  std::vector<CellDelta> deltas;
  for (auto& [key, delta] : unique) {
    masked->SetCode(delta.row, delta.attr, delta.new_code);
    deltas.push_back(delta);
  }
  return deltas;
}

void RunMeasureSequence(const Measure& measure, uint64_t seed, int steps,
                        int max_cells, bool force_rebuilds = false,
                        World world = World{}) {
  if (world.attrs.empty()) world = MakeWorld(seed);
  auto bound =
      std::move(measure.Bind(world.original, world.attrs)).ValueOrDie();
  auto state = bound->BindState(world.masked);
  if (force_rebuilds) state->set_full_rebuild_threshold(2);

  EXPECT_NEAR(state->Score(), bound->Compute(world.masked), kTol)
      << measure.Name() << " initial";

  Rng rng(seed + 17);
  for (int step = 0; step < steps; ++step) {
    double score_before = state->Score();
    Dataset before = world.masked.Clone();
    auto deltas = RandomBatch(&world.masked, world.attrs, &rng, max_cells);
    state->ApplyDelta(world.masked, deltas);
    double full = bound->Compute(world.masked);
    ASSERT_NEAR(state->Score(), full, kTol)
        << measure.Name() << " diverged at step " << step << " (batch of "
        << deltas.size() << " cells)";

    // Every fourth batch: revert both the state and the file, confirm the
    // state rewinds exactly, then re-apply so the walk keeps moving.
    if (step % 4 == 3) {
      state->Revert();
      ASSERT_NEAR(state->Score(), score_before, kTol)
          << measure.Name() << " revert broke at step " << step;
      Dataset after = world.masked;
      world.masked = before;
      ASSERT_NEAR(state->Score(), bound->Compute(world.masked), kTol);
      world.masked = after;
      state->ApplyDelta(world.masked, deltas);
      ASSERT_NEAR(state->Score(), full, kTol)
          << measure.Name() << " re-apply after revert at step " << step;
    }
  }
}

TEST(DeltaEvalTest, CtbIlMatchesFullEvaluation) {
  RunMeasureSequence(CtbIl(2), 11, 120, 6);
}

TEST(DeltaEvalTest, DbIlMatchesFullEvaluation) {
  RunMeasureSequence(DbIl(), 12, 120, 6);
}

TEST(DeltaEvalTest, EbIlMatchesFullEvaluation) {
  RunMeasureSequence(EbIl(), 13, 120, 6);
}

TEST(DeltaEvalTest, IntervalDisclosureMatchesFullEvaluation) {
  RunMeasureSequence(IntervalDisclosure(10.0), 14, 120, 6);
}

TEST(DeltaEvalTest, DbrlMatchesFullEvaluation) {
  RunMeasureSequence(DistanceBasedRecordLinkage(), 15, 120, 6);
}

TEST(DeltaEvalTest, PrlMatchesFullEvaluation) {
  RunMeasureSequence(ProbabilisticRecordLinkage(20), 16, 60, 6);
}

TEST(DeltaEvalTest, RsrlMatchesFullEvaluation) {
  RunMeasureSequence(RankSwappingRecordLinkage(15.0), 17, 120, 6);
}

TEST(DeltaEvalTest, WideBatchesTriggerRebuildAndStayExact) {
  // Batches regularly exceeding the rebuild threshold take the fallback
  // path; scores must stay exact and revertible either way.
  RunMeasureSequence(DistanceBasedRecordLinkage(), 21, 40, 24,
                     /*force_rebuilds=*/true);
  RunMeasureSequence(RankSwappingRecordLinkage(15.0), 22, 40, 24,
                     /*force_rebuilds=*/true);
  RunMeasureSequence(CtbIl(2), 23, 40, 24, /*force_rebuilds=*/true);
  RunMeasureSequence(ProbabilisticRecordLinkage(10), 24, 20, 24,
                     /*force_rebuilds=*/true);
}

TEST(DeltaEvalTest, PrlWideAttributeCountsMatchFullEvaluation) {
  // The compressed pattern-histogram state has no dense-layout attribute
  // cap: 9-16 protected attributes (2^9..2^16 pattern spaces) must track
  // the full-evaluation oracle exactly, including through rebuilds.
  for (int num_attrs : {9, 12, 16}) {
    std::vector<int> cards(static_cast<size_t>(num_attrs), 3);
    World world = MakeWorldWithCards(100 + static_cast<uint64_t>(num_attrs),
                                     /*rows=*/60, cards);
    RunMeasureSequence(ProbabilisticRecordLinkage(10),
                       200 + static_cast<uint64_t>(num_attrs),
                       /*steps=*/12, /*max_cells=*/6, /*force_rebuilds=*/false,
                       std::move(world));
  }
  // And with rebuilds forced on every batch (the revertible-rebuild path).
  World world = MakeWorldWithCards(131, /*rows=*/50,
                                   std::vector<int>(12, 3));
  RunMeasureSequence(ProbabilisticRecordLinkage(10), 231, /*steps=*/8,
                     /*max_cells=*/6, /*force_rebuilds=*/true,
                     std::move(world));
}

TEST(DeltaEvalTest, SegmentBatchesSpanningGenomeMatchFullEvaluation) {
  // Crossover-style segments from 1% to 100% of the genome, against every
  // measure: small segments stay incremental, large ones cross each
  // measure's own rebuild threshold — both must track the oracle and
  // revert exactly.
  std::vector<std::unique_ptr<Measure>> measures;
  measures.push_back(std::make_unique<CtbIl>(2));
  measures.push_back(std::make_unique<DbIl>());
  measures.push_back(std::make_unique<EbIl>());
  measures.push_back(std::make_unique<IntervalDisclosure>(10.0));
  measures.push_back(std::make_unique<DistanceBasedRecordLinkage>());
  measures.push_back(std::make_unique<ProbabilisticRecordLinkage>(10));
  measures.push_back(std::make_unique<RankSwappingRecordLinkage>(15.0));

  World world = MakeWorld(71, /*rows=*/90);
  Rng donor_rng(72);
  Dataset donor = protection::Pram(0.4)
                      .Protect(world.original, world.attrs, &donor_rng)
                      .ValueOrDie();
  core::GenomeLayout layout(world.attrs, world.original.num_rows());
  int64_t genome = layout.Length();

  for (const auto& measure : measures) {
    auto bound =
        std::move(measure->Bind(world.original, world.attrs)).ValueOrDie();
    Dataset masked = world.masked.Clone();
    auto state = bound->BindState(masked);
    Rng rng(73);
    for (double fraction : {0.01, 0.05, 0.25, 0.5, 1.0}) {
      auto length = static_cast<int64_t>(fraction * static_cast<double>(genome));
      if (length < 1) length = 1;
      int64_t s = length >= genome
                      ? 0
                      : static_cast<int64_t>(rng.UniformInt(0, genome - length));
      double score_before = state->Score();
      Dataset before = masked.Clone();
      auto segment = core::CrossoverSegmentSwap(layout, donor, &masked, s,
                                                s + length - 1);
      state->ApplySegment(masked, segment);
      double full = bound->Compute(masked);
      ASSERT_NEAR(state->Score(), full, kTol)
          << measure->Name() << " diverged on a " << fraction << " segment";
      state->RevertSegment();
      ASSERT_NEAR(state->Score(), score_before, kTol)
          << measure->Name() << " revert broke on a " << fraction
          << " segment";
      masked = std::move(before);
    }
  }
}

TEST(DeltaEvalTest, SegmentDeltaAppendMatchesFromCells) {
  // The operators' streaming Append and the generic FromCells grouping must
  // produce the same segment view for row-major batches.
  std::vector<CellDelta> cells{{0, 0, 1, 2}, {0, 2, 3, 4}, {1, 1, 0, 5},
                               {4, 0, 2, 0}, {4, 1, 1, 3}};
  SegmentDelta streamed;
  for (const CellDelta& cell : cells) {
    streamed.Append(cell.row, cell.attr, cell.old_code, cell.new_code);
  }
  SegmentDelta grouped = SegmentDelta::FromCells(cells);
  ASSERT_EQ(streamed.num_cells(), grouped.num_cells());
  ASSERT_EQ(streamed.rows().size(), grouped.rows().size());
  for (size_t r = 0; r < streamed.rows().size(); ++r) {
    EXPECT_EQ(streamed.rows()[r].row, grouped.rows()[r].row);
    ASSERT_EQ(streamed.rows()[r].cells.size(), grouped.rows()[r].cells.size());
    for (size_t c = 0; c < streamed.rows()[r].cells.size(); ++c) {
      EXPECT_EQ(streamed.rows()[r].cells[c].attr,
                grouped.rows()[r].cells[c].attr);
      EXPECT_EQ(streamed.rows()[r].cells[c].old_code,
                grouped.rows()[r].cells[c].old_code);
      EXPECT_EQ(streamed.rows()[r].cells[c].new_code,
                grouped.rows()[r].cells[c].new_code);
    }
  }
}

TEST(DeltaEvalTest, FitnessStateRebuildSizedSegmentsMatchAndRevert) {
  // Rebuild-sized segments route FitnessState::ApplyDelta through the
  // concurrent per-measure path; scores must match a full Evaluate and
  // revert exactly, and a forced global rebuild fraction must not change
  // the numbers.
  World world = MakeWorld(81, /*rows=*/80);
  Rng donor_rng(82);
  Dataset donor = protection::Pram(0.4)
                      .Protect(world.original, world.attrs, &donor_rng)
                      .ValueOrDie();
  core::GenomeLayout layout(world.attrs, world.original.num_rows());
  int64_t genome = layout.Length();

  FitnessEvaluator::Options defaults;
  defaults.prl_em_iterations = 10;
  FitnessEvaluator::Options forced = defaults;
  forced.delta_rebuild_fraction = 0.25;  // the old global cliff
  forced.measure_rebuild_fractions = {{"DBRL", 0.2}};
  for (const auto& options : {defaults, forced}) {
    auto evaluator =
        std::move(FitnessEvaluator::Create(world.original, world.attrs,
                                           options))
            .ValueOrDie();
    Dataset masked = world.masked.Clone();
    auto state = evaluator->BindState(masked);
    Rng rng(83);
    for (double fraction : {0.3, 0.6, 1.0}) {
      auto length = static_cast<int64_t>(fraction * static_cast<double>(genome));
      int64_t s = length >= genome
                      ? 0
                      : static_cast<int64_t>(rng.UniformInt(0, genome - length));
      double score_before = state->breakdown().score;
      Dataset before = masked.Clone();
      auto segment = core::CrossoverSegmentSwap(layout, donor, &masked, s,
                                                s + length - 1);
      state->ApplyDelta(masked, segment);
      FitnessBreakdown full = evaluator->Evaluate(masked);
      ASSERT_NEAR(state->breakdown().score, full.score, kTol);
      ASSERT_NEAR(state->breakdown().il, full.il, kTol);
      ASSERT_NEAR(state->breakdown().dr, full.dr, kTol);
      state->Revert();
      ASSERT_NEAR(state->breakdown().score, score_before, kTol);
      masked = std::move(before);
    }
  }
}

TEST(DeltaEvalTest, SingleCellMutationsStressRankWindows) {
  // Pure single-cell walks exercise the RSRL mid-rank flip handling (every
  // mutation shifts a masked mid-rank by one).
  RunMeasureSequence(RankSwappingRecordLinkage(15.0), 31, 250, 1);
  RunMeasureSequence(IntervalDisclosure(10.0), 32, 250, 1);
}

TEST(DeltaEvalTest, FitnessStateMatchesEvaluatorAndReverts) {
  World world = MakeWorld(41);
  FitnessEvaluator::Options options;
  options.prl_em_iterations = 20;
  auto evaluator =
      std::move(FitnessEvaluator::Create(world.original, world.attrs, options))
          .ValueOrDie();
  auto state = evaluator->BindState(world.masked);

  FitnessBreakdown full = evaluator->Evaluate(world.masked);
  EXPECT_NEAR(state->breakdown().score, full.score, kTol);
  EXPECT_NEAR(state->breakdown().il, full.il, kTol);
  EXPECT_NEAR(state->breakdown().dr, full.dr, kTol);

  Rng rng(42);
  for (int step = 0; step < 40; ++step) {
    double score_before = state->breakdown().score;
    auto deltas = RandomBatch(&world.masked, world.attrs, &rng, 5);
    state->ApplyDelta(world.masked, deltas);
    full = evaluator->Evaluate(world.masked);
    ASSERT_NEAR(state->breakdown().score, full.score, kTol) << "step " << step;
    ASSERT_NEAR(state->breakdown().ctbil, full.ctbil, kTol);
    ASSERT_NEAR(state->breakdown().dbil, full.dbil, kTol);
    ASSERT_NEAR(state->breakdown().ebil, full.ebil, kTol);
    ASSERT_NEAR(state->breakdown().id, full.id, kTol);
    ASSERT_NEAR(state->breakdown().dbrl, full.dbrl, kTol);
    ASSERT_NEAR(state->breakdown().prl, full.prl, kTol);
    ASSERT_NEAR(state->breakdown().rsrl, full.rsrl, kTol);
    if (step % 5 == 4) {
      state->Revert();
      ASSERT_NEAR(state->breakdown().score, score_before, kTol);
      state->ApplyDelta(world.masked, deltas);
    }
  }
}

TEST(DeltaEvalTest, FitnessStateRespectsAblation) {
  World world = MakeWorld(51);
  FitnessEvaluator::Options options;
  options.use_ctbil = false;
  options.use_prl = false;
  auto evaluator =
      std::move(FitnessEvaluator::Create(world.original, world.attrs, options))
          .ValueOrDie();
  auto state = evaluator->BindState(world.masked);
  EXPECT_TRUE(std::isnan(state->breakdown().ctbil));
  EXPECT_TRUE(std::isnan(state->breakdown().prl));

  Rng rng(52);
  for (int step = 0; step < 10; ++step) {
    auto deltas = RandomBatch(&world.masked, world.attrs, &rng, 4);
    state->ApplyDelta(world.masked, deltas);
    FitnessBreakdown full = evaluator->Evaluate(world.masked);
    ASSERT_NEAR(state->breakdown().score, full.score, kTol);
    ASSERT_TRUE(std::isnan(state->breakdown().ctbil));
  }
}

TEST(DeltaEvalTest, ShardRowsPartitionIsContiguousAndComplete) {
  // The shard geometry: contiguous ascending ranges covering [0, rows)
  // exactly once, with empty ranges (rows < shards) skipped by
  // ForEachShard so they contribute identity to merges.
  for (int64_t rows : {0, 1, 5, 7, 8, 64, 100}) {
    for (int shards : {1, 3, 8}) {
      int64_t expect_begin = 0;
      for (int s = 0; s < shards; ++s) {
        RowRange range = ShardRows(rows, s, shards);
        EXPECT_EQ(range.begin, expect_begin);
        EXPECT_LE(range.begin, range.end);
        expect_begin = range.end;
      }
      EXPECT_EQ(expect_begin, rows);
      std::vector<int64_t> visited(static_cast<size_t>(rows), 0);
      ForEachShard(rows, shards, [&](int shard, RowRange range) {
        EXPECT_FALSE(range.empty()) << "empty shard " << shard << " ran";
        for (int64_t r = range.begin; r < range.end; ++r) {
          visited[static_cast<size_t>(r)] += 1;
        }
      });
      for (int64_t count : visited) EXPECT_EQ(count, 1);
    }
  }
}

std::vector<std::unique_ptr<Measure>> AllMeasuresForShardTests() {
  std::vector<std::unique_ptr<Measure>> measures;
  measures.push_back(std::make_unique<CtbIl>(2));
  measures.push_back(std::make_unique<DbIl>());
  measures.push_back(std::make_unique<EbIl>());
  measures.push_back(std::make_unique<IntervalDisclosure>(10.0));
  measures.push_back(std::make_unique<DistanceBasedRecordLinkage>());
  measures.push_back(std::make_unique<ProbabilisticRecordLinkage>(10));
  measures.push_back(std::make_unique<RankSwappingRecordLinkage>(15.0));
  return measures;
}

/// A fixed walk (mutation batches, a revert, then a rebuild-sized crossover
/// segment and its revert) under the given data plane; returns every score
/// the state reported. Bit-identical traces across planes is the contract.
std::vector<double> ShardWalk(const Measure& measure, const World& world,
                              const Dataset& donor,
                              const DataPlaneConfig& config) {
  evocat::testing::DataPlaneGuard guard(config);
  auto bound =
      std::move(measure.Bind(world.original, world.attrs)).ValueOrDie();
  Dataset masked = world.masked.Clone();
  auto state = bound->BindState(masked);
  std::vector<double> scores{state->Score()};
  Rng rng(97);
  for (int step = 0; step < 8; ++step) {
    auto deltas = RandomBatch(&masked, world.attrs, &rng, 5);
    state->ApplyDelta(masked, deltas);
    scores.push_back(state->Score());
    if (step == 3) {
      state->Revert();
      scores.push_back(state->Score());
      state->ApplyDelta(masked, deltas);
    }
  }
  core::GenomeLayout layout(world.attrs, world.original.num_rows());
  int64_t genome = layout.Length();
  int64_t length = std::max<int64_t>(1, genome * 6 / 10);
  auto segment =
      core::CrossoverSegmentSwap(layout, donor, &masked, 0, length - 1);
  state->ApplySegment(masked, segment);
  scores.push_back(state->Score());
  state->RevertSegment();
  scores.push_back(state->Score());
  return scores;
}

TEST(DeltaEvalTest, ShardCountsAreBitIdenticalIncludingRebuilds) {
  // The legacy plane and the packed + sharded plane at shard counts 1, 3
  // and 8 must produce the same walk bit-for-bit, including the
  // rebuild-sized crossover leg.
  World world = MakeWorld(91, /*rows=*/120);
  Rng donor_rng(92);
  Dataset donor = protection::Pram(0.4)
                      .Protect(world.original, world.attrs, &donor_rng)
                      .ValueOrDie();
  for (const auto& measure : AllMeasuresForShardTests()) {
    auto baseline = ShardWalk(*measure, world, donor, DataPlaneConfig{});
    for (int shards : {1, 3, 8}) {
      DataPlaneConfig config;
      config.sharded = true;
      config.packed = true;
      config.shards = shards;
      auto scores = ShardWalk(*measure, world, donor, config);
      ASSERT_EQ(scores.size(), baseline.size()) << measure->Name();
      for (size_t i = 0; i < scores.size(); ++i) {
        ASSERT_EQ(scores[i], baseline[i])
            << measure->Name() << " with " << shards
            << " shards diverged at score " << i;
      }
    }
  }
}

TEST(DeltaEvalTest, RowsFewerThanShardsContributeIdentity) {
  // Regression for the empty-shard merge: with 5 rows and 8 shards, three
  // shard ranges are empty; they must contribute identity to every merge
  // (finite scores, equal to the serial plane) — not NaN partials.
  World world = MakeWorld(95, /*rows=*/5);
  Rng donor_rng(96);
  Dataset donor = protection::Pram(0.4)
                      .Protect(world.original, world.attrs, &donor_rng)
                      .ValueOrDie();
  DataPlaneConfig config;
  config.sharded = true;
  config.packed = true;
  config.shards = 8;
  for (const auto& measure : AllMeasuresForShardTests()) {
    auto baseline = ShardWalk(*measure, world, donor, DataPlaneConfig{});
    auto scores = ShardWalk(*measure, world, donor, config);
    ASSERT_EQ(scores.size(), baseline.size()) << measure->Name();
    for (size_t i = 0; i < scores.size(); ++i) {
      ASSERT_TRUE(std::isfinite(scores[i]))
          << measure->Name() << " produced a non-finite score at " << i;
      ASSERT_EQ(scores[i], baseline[i])
          << measure->Name() << " diverged at score " << i;
    }
  }
}

TEST(DeltaEvalTest, CowOffspringKeepParentStateValid) {
  // Engine-shaped usage: the child is a COW clone of the parent, gets one
  // mutated cell, and the parent's state advances and reverts against it.
  World world = MakeWorld(61);
  auto evaluator =
      std::move(FitnessEvaluator::Create(world.original, world.attrs))
          .ValueOrDie();
  auto state = evaluator->BindState(world.masked);
  Rng rng(62);
  for (int step = 0; step < 10; ++step) {
    Dataset child = world.masked.Clone();
    auto deltas = RandomBatch(&child, world.attrs, &rng, 1);
    ASSERT_TRUE(world.masked.SameCodes(world.masked));  // parent untouched
    state->ApplyDelta(child, deltas);
    FitnessBreakdown full = evaluator->Evaluate(child);
    ASSERT_NEAR(state->breakdown().score, full.score, kTol);
    if (step % 2 == 0) {
      world.masked = std::move(child);  // accept: state stays advanced
    } else {
      state->Revert();  // reject: state rewinds to the parent
      ASSERT_NEAR(state->breakdown().score,
                  evaluator->Evaluate(world.masked).score, kTol);
    }
  }
}

}  // namespace
}  // namespace metrics
}  // namespace evocat
