// Randomized delta-vs-full equivalence: long sequences of mutations and
// crossover-style segment swaps are applied to a masked file while each
// measure's incremental state tracks them; after every batch the state's
// score must match a from-scratch Compute() within 1e-9, and Revert() must
// restore the previous score exactly. Also exercises the automatic
// full-rebuild fallback for oversized batches and the COW dataset plumbing
// the engine relies on.

#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/fitness.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"
#include "protection/pram.h"

namespace evocat {
namespace metrics {
namespace {

using evocat::testing::AllAttrs;

constexpr double kTol = 1e-9;

struct World {
  Dataset original;
  Dataset masked;
  std::vector<int> attrs;
};

World MakeWorld(uint64_t seed, int64_t rows = 120) {
  auto profile = datagen::UniformTestProfile("d", rows, {7, 5, 9});
  profile.attributes[1].kind = AttrKind::kOrdinal;
  World world;
  world.original = datagen::Generate(profile, seed).ValueOrDie();
  world.attrs = AllAttrs(world.original);
  Rng rng(seed + 1);
  world.masked = protection::Pram(0.6)
                     .Protect(world.original, world.attrs, &rng)
                     .ValueOrDie();
  return world;
}

/// Applies a random batch of 1..max_cells distinct-cell changes to `masked`
/// and returns the deltas (old -> new per cell).
std::vector<CellDelta> RandomBatch(Dataset* masked,
                                   const std::vector<int>& attrs, Rng* rng,
                                   int max_cells) {
  int cells = static_cast<int>(rng->UniformInt(1, max_cells));
  std::map<std::pair<int64_t, int>, CellDelta> unique;
  for (int c = 0; c < cells; ++c) {
    int64_t row = static_cast<int64_t>(rng->UniformIndex(
        static_cast<size_t>(masked->num_rows())));
    int attr = attrs[rng->UniformIndex(attrs.size())];
    int32_t card = masked->schema().attribute(attr).cardinality();
    auto new_code = static_cast<int32_t>(rng->UniformInt(0, card - 1));
    auto key = std::make_pair(row, attr);
    auto it = unique.find(key);
    if (it == unique.end()) {
      CellDelta delta{row, attr, masked->Code(row, attr), new_code};
      unique.emplace(key, delta);
    } else {
      it->second.new_code = new_code;  // collapse repeat writes to one delta
    }
  }
  std::vector<CellDelta> deltas;
  for (auto& [key, delta] : unique) {
    masked->SetCode(delta.row, delta.attr, delta.new_code);
    deltas.push_back(delta);
  }
  return deltas;
}

void RunMeasureSequence(const Measure& measure, uint64_t seed, int steps,
                        int max_cells, bool force_rebuilds = false) {
  World world = MakeWorld(seed);
  auto bound =
      std::move(measure.Bind(world.original, world.attrs)).ValueOrDie();
  auto state = bound->BindState(world.masked);
  if (force_rebuilds) state->set_full_rebuild_threshold(2);

  EXPECT_NEAR(state->Score(), bound->Compute(world.masked), kTol)
      << measure.Name() << " initial";

  Rng rng(seed + 17);
  for (int step = 0; step < steps; ++step) {
    double score_before = state->Score();
    Dataset before = world.masked.Clone();
    auto deltas = RandomBatch(&world.masked, world.attrs, &rng, max_cells);
    state->ApplyDelta(world.masked, deltas);
    double full = bound->Compute(world.masked);
    ASSERT_NEAR(state->Score(), full, kTol)
        << measure.Name() << " diverged at step " << step << " (batch of "
        << deltas.size() << " cells)";

    // Every fourth batch: revert both the state and the file, confirm the
    // state rewinds exactly, then re-apply so the walk keeps moving.
    if (step % 4 == 3) {
      state->Revert();
      ASSERT_NEAR(state->Score(), score_before, kTol)
          << measure.Name() << " revert broke at step " << step;
      Dataset after = world.masked;
      world.masked = before;
      ASSERT_NEAR(state->Score(), bound->Compute(world.masked), kTol);
      world.masked = after;
      state->ApplyDelta(world.masked, deltas);
      ASSERT_NEAR(state->Score(), full, kTol)
          << measure.Name() << " re-apply after revert at step " << step;
    }
  }
}

TEST(DeltaEvalTest, CtbIlMatchesFullEvaluation) {
  RunMeasureSequence(CtbIl(2), 11, 120, 6);
}

TEST(DeltaEvalTest, DbIlMatchesFullEvaluation) {
  RunMeasureSequence(DbIl(), 12, 120, 6);
}

TEST(DeltaEvalTest, EbIlMatchesFullEvaluation) {
  RunMeasureSequence(EbIl(), 13, 120, 6);
}

TEST(DeltaEvalTest, IntervalDisclosureMatchesFullEvaluation) {
  RunMeasureSequence(IntervalDisclosure(10.0), 14, 120, 6);
}

TEST(DeltaEvalTest, DbrlMatchesFullEvaluation) {
  RunMeasureSequence(DistanceBasedRecordLinkage(), 15, 120, 6);
}

TEST(DeltaEvalTest, PrlMatchesFullEvaluation) {
  RunMeasureSequence(ProbabilisticRecordLinkage(20), 16, 60, 6);
}

TEST(DeltaEvalTest, RsrlMatchesFullEvaluation) {
  RunMeasureSequence(RankSwappingRecordLinkage(15.0), 17, 120, 6);
}

TEST(DeltaEvalTest, WideBatchesTriggerRebuildAndStayExact) {
  // Batches regularly exceeding the rebuild threshold take the fallback
  // path; scores must stay exact and revertible either way.
  RunMeasureSequence(DistanceBasedRecordLinkage(), 21, 40, 24,
                     /*force_rebuilds=*/true);
  RunMeasureSequence(RankSwappingRecordLinkage(15.0), 22, 40, 24,
                     /*force_rebuilds=*/true);
  RunMeasureSequence(CtbIl(2), 23, 40, 24, /*force_rebuilds=*/true);
  RunMeasureSequence(ProbabilisticRecordLinkage(10), 24, 20, 24,
                     /*force_rebuilds=*/true);
}

TEST(DeltaEvalTest, SingleCellMutationsStressRankWindows) {
  // Pure single-cell walks exercise the RSRL mid-rank flip handling (every
  // mutation shifts a masked mid-rank by one).
  RunMeasureSequence(RankSwappingRecordLinkage(15.0), 31, 250, 1);
  RunMeasureSequence(IntervalDisclosure(10.0), 32, 250, 1);
}

TEST(DeltaEvalTest, FitnessStateMatchesEvaluatorAndReverts) {
  World world = MakeWorld(41);
  FitnessEvaluator::Options options;
  options.prl_em_iterations = 20;
  auto evaluator =
      std::move(FitnessEvaluator::Create(world.original, world.attrs, options))
          .ValueOrDie();
  auto state = evaluator->BindState(world.masked);

  FitnessBreakdown full = evaluator->Evaluate(world.masked);
  EXPECT_NEAR(state->breakdown().score, full.score, kTol);
  EXPECT_NEAR(state->breakdown().il, full.il, kTol);
  EXPECT_NEAR(state->breakdown().dr, full.dr, kTol);

  Rng rng(42);
  for (int step = 0; step < 40; ++step) {
    double score_before = state->breakdown().score;
    auto deltas = RandomBatch(&world.masked, world.attrs, &rng, 5);
    state->ApplyDelta(world.masked, deltas);
    full = evaluator->Evaluate(world.masked);
    ASSERT_NEAR(state->breakdown().score, full.score, kTol) << "step " << step;
    ASSERT_NEAR(state->breakdown().ctbil, full.ctbil, kTol);
    ASSERT_NEAR(state->breakdown().dbil, full.dbil, kTol);
    ASSERT_NEAR(state->breakdown().ebil, full.ebil, kTol);
    ASSERT_NEAR(state->breakdown().id, full.id, kTol);
    ASSERT_NEAR(state->breakdown().dbrl, full.dbrl, kTol);
    ASSERT_NEAR(state->breakdown().prl, full.prl, kTol);
    ASSERT_NEAR(state->breakdown().rsrl, full.rsrl, kTol);
    if (step % 5 == 4) {
      state->Revert();
      ASSERT_NEAR(state->breakdown().score, score_before, kTol);
      state->ApplyDelta(world.masked, deltas);
    }
  }
}

TEST(DeltaEvalTest, FitnessStateRespectsAblation) {
  World world = MakeWorld(51);
  FitnessEvaluator::Options options;
  options.use_ctbil = false;
  options.use_prl = false;
  auto evaluator =
      std::move(FitnessEvaluator::Create(world.original, world.attrs, options))
          .ValueOrDie();
  auto state = evaluator->BindState(world.masked);
  EXPECT_TRUE(std::isnan(state->breakdown().ctbil));
  EXPECT_TRUE(std::isnan(state->breakdown().prl));

  Rng rng(52);
  for (int step = 0; step < 10; ++step) {
    auto deltas = RandomBatch(&world.masked, world.attrs, &rng, 4);
    state->ApplyDelta(world.masked, deltas);
    FitnessBreakdown full = evaluator->Evaluate(world.masked);
    ASSERT_NEAR(state->breakdown().score, full.score, kTol);
    ASSERT_TRUE(std::isnan(state->breakdown().ctbil));
  }
}

TEST(DeltaEvalTest, CowOffspringKeepParentStateValid) {
  // Engine-shaped usage: the child is a COW clone of the parent, gets one
  // mutated cell, and the parent's state advances and reverts against it.
  World world = MakeWorld(61);
  auto evaluator =
      std::move(FitnessEvaluator::Create(world.original, world.attrs))
          .ValueOrDie();
  auto state = evaluator->BindState(world.masked);
  Rng rng(62);
  for (int step = 0; step < 10; ++step) {
    Dataset child = world.masked.Clone();
    auto deltas = RandomBatch(&child, world.attrs, &rng, 1);
    ASSERT_TRUE(world.masked.SameCodes(world.masked));  // parent untouched
    state->ApplyDelta(child, deltas);
    FitnessBreakdown full = evaluator->Evaluate(child);
    ASSERT_NEAR(state->breakdown().score, full.score, kTol);
    if (step % 2 == 0) {
      world.masked = std::move(child);  // accept: state stays advanced
    } else {
      state->Revert();  // reject: state rewinds to the parent
      ASSERT_NEAR(state->breakdown().score,
                  evaluator->Evaluate(world.masked).score, kTol);
    }
  }
}

}  // namespace
}  // namespace metrics
}  // namespace evocat
