#include "metrics/fitness.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "datagen/generator.h"
#include "protection/pram.h"

namespace evocat {
namespace metrics {
namespace {

using evocat::testing::AllAttrs;

Dataset TestData() {
  auto profile = datagen::UniformTestProfile("f", 200, {9, 6, 7});
  profile.attributes[1].kind = AttrKind::kOrdinal;
  return datagen::Generate(profile, 44).ValueOrDie();
}

TEST(AggregateScoreTest, MeanAndMax) {
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kMean, 20.0, 40.0), 30.0);
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kMax, 20.0, 40.0), 40.0);
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kMax, 40.0, 20.0), 40.0);
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kMean, 0.0, 0.0), 0.0);
}

TEST(AggregateScoreTest, PaperPreferenceExample) {
  // Paper §2.3.3: for mean, (IL=20, DR=20) and (IL=0, DR=40) are equal; max
  // separates them, preferring the balanced protection.
  double balanced_mean = AggregateScore(ScoreAggregation::kMean, 20, 20);
  double unbalanced_mean = AggregateScore(ScoreAggregation::kMean, 0, 40);
  EXPECT_DOUBLE_EQ(balanced_mean, unbalanced_mean);
  double balanced_max = AggregateScore(ScoreAggregation::kMax, 20, 20);
  double unbalanced_max = AggregateScore(ScoreAggregation::kMax, 0, 40);
  EXPECT_LT(balanced_max, unbalanced_max);
}

TEST(AggregationNamesTest, Stable) {
  EXPECT_STREQ(ScoreAggregationToString(ScoreAggregation::kMean), "mean");
  EXPECT_STREQ(ScoreAggregationToString(ScoreAggregation::kMax), "max");
  EXPECT_STREQ(ScoreAggregationToString(ScoreAggregation::kEuclidean),
               "euclidean");
  EXPECT_STREQ(ScoreAggregationToString(ScoreAggregation::kWeighted),
               "weighted");
}

TEST(AggregateScoreTest, EuclideanIsQuadraticMean) {
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kEuclidean, 30.0, 30.0),
                   30.0);  // balanced: equals the common value
  EXPECT_NEAR(AggregateScore(ScoreAggregation::kEuclidean, 0.0, 40.0),
              40.0 / std::sqrt(2.0), 1e-12);
}

TEST(AggregateScoreTest, EuclideanSitsBetweenMeanAndMax) {
  // For unbalanced pairs: mean <= euclidean <= max.
  for (double il : {0.0, 10.0, 35.0}) {
    for (double dr : {40.0, 70.0}) {
      double mean = AggregateScore(ScoreAggregation::kMean, il, dr);
      double euclid = AggregateScore(ScoreAggregation::kEuclidean, il, dr);
      double max = AggregateScore(ScoreAggregation::kMax, il, dr);
      EXPECT_GE(euclid, mean - 1e-12);
      EXPECT_LE(euclid, max + 1e-12);
    }
  }
}

TEST(AggregateScoreTest, WeightedTiltsTheTradeoff) {
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kWeighted, 20, 40, 0.5),
                   30.0);  // w=0.5 degenerates to the mean
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kWeighted, 20, 40, 1.0),
                   20.0);  // all weight on IL
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kWeighted, 20, 40, 0.0),
                   40.0);  // all weight on DR
  EXPECT_DOUBLE_EQ(AggregateScore(ScoreAggregation::kWeighted, 20, 40, 0.25),
                   35.0);
}

TEST(FitnessEvaluatorTest, WeightedAggregationApplied) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  FitnessEvaluator::Options options;
  options.aggregation = ScoreAggregation::kWeighted;
  options.il_weight = 0.2;
  auto evaluator =
      std::move(FitnessEvaluator::Create(original, attrs, options)).ValueOrDie();
  Rng rng(5);
  Dataset masked =
      protection::Pram(0.6).Protect(original, attrs, &rng).ValueOrDie();
  FitnessBreakdown b = evaluator->Evaluate(masked);
  EXPECT_NEAR(b.score, 0.2 * b.il + 0.8 * b.dr, 1e-9);
}

TEST(FitnessEvaluatorTest, RejectsBadIlWeight) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  FitnessEvaluator::Options options;
  options.il_weight = 1.5;
  EXPECT_FALSE(FitnessEvaluator::Create(original, attrs, options).ok());
  options.il_weight = -0.1;
  EXPECT_FALSE(FitnessEvaluator::Create(original, attrs, options).ok());
}

TEST(FitnessEvaluatorTest, BreakdownConsistency) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  auto evaluator = std::move(FitnessEvaluator::Create(original, attrs)).ValueOrDie();

  Rng rng(5);
  Dataset masked =
      protection::Pram(0.6).Protect(original, attrs, &rng).ValueOrDie();
  FitnessBreakdown b = evaluator->Evaluate(masked);

  EXPECT_NEAR(b.il, (b.ctbil + b.dbil + b.ebil) / 3.0, 1e-9);
  EXPECT_NEAR(b.dr, (b.id + b.dbrl + b.prl + b.rsrl) / 4.0, 1e-9);
  EXPECT_NEAR(b.score, (b.il + b.dr) / 2.0, 1e-9);  // default: mean
  for (double v : {b.ctbil, b.dbil, b.ebil, b.id, b.dbrl, b.prl, b.rsrl}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(FitnessEvaluatorTest, MaxAggregationUsed) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  FitnessEvaluator::Options options;
  options.aggregation = ScoreAggregation::kMax;
  auto evaluator =
      std::move(FitnessEvaluator::Create(original, attrs, options)).ValueOrDie();
  Rng rng(5);
  Dataset masked =
      protection::Pram(0.6).Protect(original, attrs, &rng).ValueOrDie();
  FitnessBreakdown b = evaluator->Evaluate(masked);
  EXPECT_DOUBLE_EQ(b.score, std::max(b.il, b.dr));
}

TEST(FitnessEvaluatorTest, IdentityMaskingScoresAsExpected) {
  // Identity: IL = 0, DR high (ID is exactly 100). Mean score = DR/2.
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  auto evaluator = std::move(FitnessEvaluator::Create(original, attrs)).ValueOrDie();
  FitnessBreakdown b = evaluator->Evaluate(original.Clone());
  EXPECT_NEAR(b.il, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.id, 100.0);
  EXPECT_GT(b.dr, 50.0);
  EXPECT_NEAR(b.score, b.dr / 2.0, 1e-9);
}

TEST(FitnessEvaluatorTest, AblationDisablesMeasures) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  FitnessEvaluator::Options options;
  options.use_ctbil = false;
  options.use_id = false;
  options.use_prl = false;
  auto evaluator =
      std::move(FitnessEvaluator::Create(original, attrs, options)).ValueOrDie();
  Rng rng(5);
  Dataset masked =
      protection::Pram(0.6).Protect(original, attrs, &rng).ValueOrDie();
  FitnessBreakdown b = evaluator->Evaluate(masked);
  EXPECT_TRUE(std::isnan(b.ctbil));
  EXPECT_TRUE(std::isnan(b.id));
  EXPECT_TRUE(std::isnan(b.prl));
  EXPECT_NEAR(b.il, (b.dbil + b.ebil) / 2.0, 1e-9);
  EXPECT_NEAR(b.dr, (b.dbrl + b.rsrl) / 2.0, 1e-9);
}

TEST(FitnessEvaluatorTest, RejectsAllMeasuresDisabled) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  FitnessEvaluator::Options options;
  options.use_ctbil = options.use_dbil = options.use_ebil = false;
  EXPECT_FALSE(FitnessEvaluator::Create(original, attrs, options).ok());

  FitnessEvaluator::Options options2;
  options2.use_id = options2.use_dbrl = options2.use_prl = options2.use_rsrl =
      false;
  EXPECT_FALSE(FitnessEvaluator::Create(original, attrs, options2).ok());
}

TEST(FitnessEvaluatorTest, CountsEvaluations) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  auto evaluator = std::move(FitnessEvaluator::Create(original, attrs)).ValueOrDie();
  EXPECT_EQ(evaluator->num_evaluations(), 0);
  evaluator->Evaluate(original.Clone());
  evaluator->Evaluate(original.Clone());
  EXPECT_EQ(evaluator->num_evaluations(), 2);
}

TEST(FitnessEvaluatorTest, DeterministicAcrossCalls) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  auto evaluator = std::move(FitnessEvaluator::Create(original, attrs)).ValueOrDie();
  Rng rng(5);
  Dataset masked =
      protection::Pram(0.4).Protect(original, attrs, &rng).ValueOrDie();
  FitnessBreakdown a = evaluator->Evaluate(masked);
  FitnessBreakdown b = evaluator->Evaluate(masked);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_DOUBLE_EQ(a.il, b.il);
  EXPECT_DOUBLE_EQ(a.dr, b.dr);
}

TEST(FitnessEvaluatorTest, ProbeKeepsScoresExactAndReportsFractions) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  Rng rng(11);
  Dataset masked =
      protection::Pram(0.3).Protect(original, attrs, &rng).ValueOrDie();

  FitnessEvaluator::Options plain;
  auto baseline =
      std::move(FitnessEvaluator::Create(original, attrs, plain)).ValueOrDie();
  auto baseline_state = baseline->BindState(masked);

  FitnessEvaluator::Options with_probe;
  with_probe.probe_rebuild_fractions = true;
  auto probed = std::move(FitnessEvaluator::Create(original, attrs, with_probe))
                    .ValueOrDie();
  EXPECT_TRUE(probed->probed_rebuild_fractions().empty());  // not bound yet
  auto state = probed->BindState(masked);

  // The probe only re-times the cost model (its no-op applies are reverted),
  // so the bound breakdown must stay bitwise equal to an unprobed bind.
  EXPECT_EQ(state->breakdown().score, baseline_state->breakdown().score);
  EXPECT_EQ(state->breakdown().il, baseline_state->breakdown().il);
  EXPECT_EQ(state->breakdown().dr, baseline_state->breakdown().dr);

  auto fractions = probed->probed_rebuild_fractions();
  ASSERT_EQ(fractions.size(), 7u);  // every measure enabled, none pinned
  for (const auto& [name, fraction] : fractions) {
    EXPECT_GE(fraction, 0.01) << name;
    EXPECT_LE(fraction, 1.0) << name;
  }

  // Probed states still score exactly: a real delta applied incrementally
  // must match the from-scratch oracle.
  Dataset after = masked.Clone();
  int32_t old_code = after.Code(3, attrs[0]);
  int32_t new_code = old_code == 0 ? 1 : 0;
  after.SetCode(3, attrs[0], new_code);
  state->ApplyDelta(after,
                    std::vector<CellDelta>{{3, attrs[0], old_code, new_code}});
  FitnessBreakdown oracle = baseline->Evaluate(after);
  EXPECT_NEAR(state->breakdown().score, oracle.score, 1e-9);

  // A second bind reuses the cached verdicts instead of re-timing.
  auto state2 = probed->BindState(masked);
  EXPECT_EQ(probed->probed_rebuild_fractions(), fractions);
}

TEST(FitnessEvaluatorTest, ProbeSkipsPinnedMeasures) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  FitnessEvaluator::Options options;
  options.probe_rebuild_fractions = true;
  options.measure_rebuild_fractions = {{"DBRL", 0.3}, {"PRL", 0.2}};
  auto evaluator =
      std::move(FitnessEvaluator::Create(original, attrs, options))
          .ValueOrDie();
  auto state = evaluator->BindState(original.Clone());
  auto fractions = evaluator->probed_rebuild_fractions();
  EXPECT_EQ(fractions.size(), 5u);  // 7 measures minus the 2 pinned ones
  for (const auto& [name, fraction] : fractions) {
    EXPECT_NE(name, "dbrl");
    EXPECT_NE(name, "prl");
  }
}

TEST(FitnessEvaluatorTest, ScoreHelperMatchesAggregation) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  FitnessEvaluator::Options options;
  options.aggregation = ScoreAggregation::kMax;
  auto evaluator =
      std::move(FitnessEvaluator::Create(original, attrs, options)).ValueOrDie();
  EXPECT_DOUBLE_EQ(evaluator->Score(10.0, 30.0), 30.0);
}

}  // namespace
}  // namespace metrics
}  // namespace evocat
