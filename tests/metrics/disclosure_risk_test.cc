// Behaviour of the four disclosure-risk measures: maximal on identity
// masking, bounded, decreasing under stronger perturbation, and
// attack-specific semantics (rank windows for ID/RSRL, EM for PRL).

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "datagen/generator.h"
#include "metrics/dbrl.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"
#include "protection/pram.h"
#include "protection/rank_swapping.h"

namespace evocat {
namespace metrics {
namespace {

using evocat::testing::AllAttrs;
using evocat::testing::BuildDataset;
using evocat::testing::TestAttr;

Dataset TestData() {
  // Enough cardinality/correlation that most records are distinguishable —
  // linkage on identity masking should then succeed for most records.
  auto profile = datagen::UniformTestProfile("d", 250, {15, 11, 9});
  for (auto& attr : profile.attributes) {
    attr.latent_weight = 0.4;
    attr.zipf_s = 0.4;
  }
  profile.attributes[0].kind = AttrKind::kOrdinal;
  return datagen::Generate(profile, 33).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Identity masking: maximal risk

TEST(DisclosureRiskTest, IntervalDisclosureIsHundredOnIdentity) {
  Dataset original = TestData();
  Dataset copy = original.Clone();
  EXPECT_DOUBLE_EQ(
      IntervalDisclosure(10.0).Compute(original, copy, AllAttrs(original)).ValueOrDie(),
      100.0);
}

TEST(DisclosureRiskTest, LinkageHighOnIdentity) {
  Dataset original = TestData();
  Dataset copy = original.Clone();
  auto attrs = AllAttrs(original);
  // Duplicated records share linkage credit, so the value is below 100 but
  // must be high for this near-unique dataset.
  double dbrl =
      DistanceBasedRecordLinkage().Compute(original, copy, attrs).ValueOrDie();
  double prl =
      ProbabilisticRecordLinkage().Compute(original, copy, attrs).ValueOrDie();
  double rsrl =
      RankSwappingRecordLinkage(15.0).Compute(original, copy, attrs).ValueOrDie();
  EXPECT_GT(dbrl, 60.0);
  EXPECT_GT(prl, 60.0);
  EXPECT_GT(rsrl, 60.0);
  EXPECT_LE(dbrl, 100.0);
  EXPECT_LE(prl, 100.0);
  EXPECT_LE(rsrl, 100.0);
}

TEST(DisclosureRiskTest, ExactTieCreditSplitsUniformly) {
  // Two identical original records, identity masking: each original links to
  // both copies at distance 0 -> credit 1/2 each -> DBRL 50.
  Dataset original = BuildDataset({{"A", AttrKind::kNominal, 3}},
                                  {{1}, {1}});
  Dataset copy = original.Clone();
  EXPECT_DOUBLE_EQ(
      DistanceBasedRecordLinkage().Compute(original, copy, {0}).ValueOrDie(),
      50.0);
}

// ---------------------------------------------------------------------------
// Stronger perturbation reduces risk (for each DR measure)

class DrMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(DrMonotonicityTest, MorePerturbationLessRisk) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  Rng rng_mild(3), rng_harsh(3);
  Dataset mild = protection::Pram(0.95)
                     .Protect(original, attrs, &rng_mild)
                     .ValueOrDie();
  Dataset harsh = protection::Pram(0.05)
                      .Protect(original, attrs, &rng_harsh)
                      .ValueOrDie();
  double mild_risk = 0, harsh_risk = 0;
  switch (GetParam()) {
    case 0:
      mild_risk = IntervalDisclosure().Compute(original, mild, attrs).ValueOrDie();
      harsh_risk =
          IntervalDisclosure().Compute(original, harsh, attrs).ValueOrDie();
      break;
    case 1:
      mild_risk =
          DistanceBasedRecordLinkage().Compute(original, mild, attrs).ValueOrDie();
      harsh_risk = DistanceBasedRecordLinkage()
                       .Compute(original, harsh, attrs)
                       .ValueOrDie();
      break;
    case 2:
      mild_risk = ProbabilisticRecordLinkage()
                      .Compute(original, mild, attrs)
                      .ValueOrDie();
      harsh_risk = ProbabilisticRecordLinkage()
                       .Compute(original, harsh, attrs)
                       .ValueOrDie();
      break;
    case 3:
      mild_risk = RankSwappingRecordLinkage(15.0)
                      .Compute(original, mild, attrs)
                      .ValueOrDie();
      harsh_risk = RankSwappingRecordLinkage(15.0)
                       .Compute(original, harsh, attrs)
                       .ValueOrDie();
      break;
  }
  EXPECT_GT(mild_risk, harsh_risk);
  EXPECT_GE(harsh_risk, 0.0);
  EXPECT_LE(mild_risk, 100.0);
}

INSTANTIATE_TEST_SUITE_P(AllDrMeasures, DrMonotonicityTest,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Interval disclosure specifics

TEST(IntervalDisclosureTest, WiderWindowMoreDisclosure) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  Rng rng(5);
  Dataset masked =
      protection::Pram(0.5).Protect(original, attrs, &rng).ValueOrDie();
  double narrow =
      IntervalDisclosure(2.0).Compute(original, masked, attrs).ValueOrDie();
  double wide =
      IntervalDisclosure(40.0).Compute(original, masked, attrs).ValueOrDie();
  EXPECT_LT(narrow, wide);
}

TEST(IntervalDisclosureTest, RejectsBadWindow) {
  Dataset original = TestData();
  EXPECT_FALSE(
      IntervalDisclosure(0.0).Compute(original, original.Clone(), {0}).ok());
  EXPECT_FALSE(
      IntervalDisclosure(150.0).Compute(original, original.Clone(), {0}).ok());
}

TEST(IntervalDisclosureTest, UniformCategoryShiftPreservesRanks) {
  // Ranks are positions within each file's own marginal, so shifting every
  // value by a constant number of categories leaves each record at the same
  // rank: rank-based interval disclosure stays 100 (the attacker's rank
  // interval still pins the original). This shift-invariance is a property
  // of rank-based ID, not a leak.
  std::vector<std::vector<int32_t>> rows;
  for (int32_t i = 0; i < 10; ++i) rows.push_back({i});
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 15}}, rows);
  Dataset masked = original.Clone();
  for (int64_t r = 0; r < masked.num_rows(); ++r) {
    masked.SetCode(r, 0, original.Code(r, 0) + 5);
  }
  EXPECT_DOUBLE_EQ(
      IntervalDisclosure(10.0).Compute(original, masked, {0}).ValueOrDie(),
      100.0);
}

TEST(IntervalDisclosureTest, RankRotationOutsideWindowNotDisclosed) {
  // A marginal-preserving permutation (rotate categories by 5 of 10) moves
  // every record 5 ranks away: invisible to a 10% window (1 rank), fully
  // disclosed to a 90% window.
  std::vector<std::vector<int32_t>> rows;
  for (int32_t i = 0; i < 10; ++i) rows.push_back({i});
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 10}}, rows);
  Dataset masked = original.Clone();
  for (int64_t r = 0; r < masked.num_rows(); ++r) {
    masked.SetCode(r, 0, (original.Code(r, 0) + 5) % 10);
  }
  EXPECT_DOUBLE_EQ(
      IntervalDisclosure(10.0).Compute(original, masked, {0}).ValueOrDie(),
      0.0);
  EXPECT_DOUBLE_EQ(
      IntervalDisclosure(90.0).Compute(original, masked, {0}).ValueOrDie(),
      100.0);
}

// ---------------------------------------------------------------------------
// PRL / Fellegi–Sunter specifics

TEST(FellegiSunterTest, EmSeparatesMatchesFromNonMatches) {
  // Synthetic pattern counts over 2 attributes: 100 pairs agree on both
  // (matches), 9900 agree on nothing (non-matches).
  std::vector<double> counts(4, 0.0);
  counts[0b11] = 100.0;
  counts[0b00] = 9900.0;
  auto model = FitFellegiSunter(counts, 2, 100);
  EXPECT_GT(model.m[0], 0.9);
  EXPECT_GT(model.m[1], 0.9);
  EXPECT_LT(model.u[0], 0.1);
  EXPECT_LT(model.u[1], 0.1);
  EXPECT_NEAR(model.match_prevalence, 0.01, 0.005);
}

TEST(FellegiSunterTest, FullAgreementOutweighsPartial) {
  std::vector<double> counts(4, 0.0);
  counts[0b11] = 50.0;
  counts[0b01] = 500.0;
  counts[0b10] = 500.0;
  counts[0b00] = 8950.0;
  auto model = FitFellegiSunter(counts, 2, 100);
  EXPECT_GT(model.PatternWeight(0b11), model.PatternWeight(0b01));
  EXPECT_GT(model.PatternWeight(0b01), model.PatternWeight(0b00));
}

TEST(FellegiSunterTest, WeightsAreFiniteUnderDegenerateCounts) {
  // All pairs agree everywhere: clamping must keep weights finite.
  std::vector<double> counts(4, 0.0);
  counts[0b11] = 1000.0;
  auto model = FitFellegiSunter(counts, 2, 100);
  EXPECT_TRUE(std::isfinite(model.PatternWeight(0b11)));
  EXPECT_TRUE(std::isfinite(model.PatternWeight(0b00)));
}

TEST(FellegiSunterTest, FixedPointEarlyExitPreservesTheModel) {
  // The cold fit stops at a bitwise fixed point; any larger sweep budget
  // must return the identical model (the skipped sweeps are no-ops).
  std::vector<double> counts(4, 0.0);
  counts[0b11] = 100.0;
  counts[0b01] = 300.0;
  counts[0b00] = 9600.0;
  auto converged = FitFellegiSunter(counts, 2, 200);
  auto longer = FitFellegiSunter(counts, 2, 5000);
  EXPECT_EQ(converged.m, longer.m);
  EXPECT_EQ(converged.u, longer.u);
  EXPECT_EQ(converged.match_prevalence, longer.match_prevalence);
}

TEST(FellegiSunterTest, WarmStartMatchesColdOracleOnSmallDeltas) {
  // Warm-start oracle: fit cold, shift a few pattern counts (one changed
  // masked cell moves one histogram unit per record), refit warm from the
  // previous model and cold from scratch. The warm path must converge
  // within its sweep budget to an exactly self-consistent model (idempotent
  // under a further warm refit) on the same convergence plateau as the cold
  // fit — near the solution each EM sweep moves the parameters by less than
  // one ulp, so both trajectories freeze on a plateau ~1e-4 wide and exact
  // equality holds plane-vs-plane (identical carried models), not
  // warm-vs-cold.
  std::vector<std::pair<uint32_t, double>> counts{
      {0b00, 9500.0}, {0b01, 250.0}, {0b10, 150.0}, {0b11, 100.0}};
  auto previous = FitFellegiSunter(counts, 2, 200);

  std::vector<std::pair<uint32_t, double>> shifted{
      {0b00, 9498.0}, {0b01, 251.0}, {0b10, 150.0}, {0b11, 101.0}};
  auto oracle = FitFellegiSunter(shifted, 2, 200);
  bool warm_hit = false;
  auto warm = FitFellegiSunterWarm(shifted, 2, 200, previous, &warm_hit);
  ASSERT_TRUE(warm_hit);
  for (size_t k = 0; k < warm.m.size(); ++k) {
    EXPECT_NEAR(warm.m[k], oracle.m[k], 2e-4);
    EXPECT_NEAR(warm.u[k], oracle.u[k], 2e-4);
  }
  EXPECT_NEAR(warm.match_prevalence, oracle.match_prevalence, 2e-4);
  // The models must induce the same linkage behavior: identical weight
  // ordering over the whole pattern space (ties are decided at 1e-12, far
  // below the weight gaps here).
  for (uint32_t p = 0; p < 4; ++p) {
    for (uint32_t q = 0; q < 4; ++q) {
      EXPECT_EQ(warm.PatternWeight(p) > warm.PatternWeight(q),
                oracle.PatternWeight(p) > oracle.PatternWeight(q))
          << p << " vs " << q;
    }
  }

  // Idempotence: a warm hit is an exact fixed point, so refitting from it
  // converges in the first sweep to the identical model.
  bool again_hit = false;
  auto again = FitFellegiSunterWarm(shifted, 2, 200, warm, &again_hit);
  EXPECT_TRUE(again_hit);
  EXPECT_EQ(again.m, warm.m);
  EXPECT_EQ(again.u, warm.u);
  EXPECT_EQ(again.match_prevalence, warm.match_prevalence);
}

TEST(FellegiSunterTest, WarmStartFallsBackToColdArithmetic) {
  std::vector<std::pair<uint32_t, double>> counts{
      {0b00, 9500.0}, {0b01, 250.0}, {0b10, 150.0}, {0b11, 100.0}};
  auto oracle = FitFellegiSunter(counts, 2, 200);
  // Wrong arity: the warm model cannot seed a 2-attribute fit.
  FellegiSunterModel mismatched;
  mismatched.m = {0.5};
  mismatched.u = {0.5};
  mismatched.match_prevalence = 0.5;
  bool warm_hit = true;
  auto fallback = FitFellegiSunterWarm(counts, 2, 200, mismatched, &warm_hit);
  EXPECT_FALSE(warm_hit);
  EXPECT_EQ(fallback.m, oracle.m);
  EXPECT_EQ(fallback.u, oracle.u);
  EXPECT_EQ(fallback.match_prevalence, oracle.match_prevalence);
  // Tiny sweep budgets (below the cold trajectory's own convergence) must
  // keep the exact cold arithmetic rather than chase a fixed point.
  bool small_hit = true;
  auto small_budget = FitFellegiSunterWarm(counts, 2, 2, oracle, &small_hit);
  auto small_cold = FitFellegiSunter(counts, 2, 2);
  EXPECT_FALSE(small_hit);
  EXPECT_EQ(small_budget.m, small_cold.m);
  EXPECT_EQ(small_budget.u, small_cold.u);
  EXPECT_EQ(small_budget.match_prevalence, small_cold.match_prevalence);
}

TEST(PrlTest, RejectsBadConfig) {
  Dataset original = TestData();
  EXPECT_FALSE(ProbabilisticRecordLinkage(0)
                   .Compute(original, original.Clone(), {0})
                   .ok());
}

// ---------------------------------------------------------------------------
// RSRL specifics

TEST(RsrlTest, CandidateWindowCanBeatPlainLinkageOnRankSwapping) {
  // On a rank-swapped file with displacement within the attacker's assumed
  // window, RSRL must find at least as many correct links as it loses to
  // records outside the window — and the true match is always a candidate.
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  Rng rng(7);
  Dataset masked = protection::RankSwapping(5.0)
                       .Protect(original, attrs, &rng)
                       .ValueOrDie();
  double rsrl = RankSwappingRecordLinkage(15.0)
                    .Compute(original, masked, attrs)
                    .ValueOrDie();
  EXPECT_GT(rsrl, 0.0);
  EXPECT_LE(rsrl, 100.0);
}

TEST(RsrlTest, TinyWindowEliminatesFarCandidates) {
  // A marginal-preserving rotation moves every record 10 ranks (of 20).
  // With an assumed 5% window (1 rank) the true match is never a candidate,
  // and any candidate that does pass the window is a wrong link: risk 0.
  std::vector<std::vector<int32_t>> rows;
  for (int32_t i = 0; i < 20; ++i) rows.push_back({i});
  Dataset original = BuildDataset({{"A", AttrKind::kOrdinal, 20}}, rows);
  Dataset masked = original.Clone();
  for (int64_t r = 0; r < masked.num_rows(); ++r) {
    masked.SetCode(r, 0, (original.Code(r, 0) + 10) % 20);
  }
  EXPECT_DOUBLE_EQ(RankSwappingRecordLinkage(5.0)
                       .Compute(original, masked, {0})
                       .ValueOrDie(),
                   0.0);
}

TEST(RsrlTest, RejectsBadAssumedP) {
  Dataset original = TestData();
  EXPECT_FALSE(RankSwappingRecordLinkage(0.0)
                   .Compute(original, original.Clone(), {0})
                   .ok());
}

// ---------------------------------------------------------------------------
// Cross-measure sanity: rank swapping defeats naive linkage harder than the
// rank-aware attack on the same file (the Nin et al. motivation).

TEST(CrossMeasureTest, RsrlAtLeastDbrlOnRankSwappedData) {
  Dataset original = TestData();
  auto attrs = AllAttrs(original);
  Rng rng(13);
  Dataset masked = protection::RankSwapping(8.0)
                       .Protect(original, attrs, &rng)
                       .ValueOrDie();
  double dbrl =
      DistanceBasedRecordLinkage().Compute(original, masked, attrs).ValueOrDie();
  double rsrl = RankSwappingRecordLinkage(10.0)
                    .Compute(original, masked, attrs)
                    .ValueOrDie();
  // The constrained candidate set can only remove wrong candidates that beat
  // the true match; allow slack for credit-splitting differences.
  EXPECT_GE(rsrl, dbrl * 0.8);
}

}  // namespace
}  // namespace metrics
}  // namespace evocat
