// Scale-parameterized oracle harness: every measure runs the same seeded
// (operator-sequence, seed) walk twice — once on the legacy row-oriented
// plane (the oracle) and once on the packed + sharded plane — at 1k, 10k
// and (behind the *Scale100k* filter, ctest label `scale`) 100k rows. The
// two traces must agree bit-for-bit on every intermediate score, through
// reverts and a rebuild-sized segment, and both paths must finish with the
// RNG at the same draw count (neither may consume extra randomness). At 1k
// the oracle trace is additionally cross-checked against from-scratch
// Compute() calls.

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"
#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/fitness.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"

namespace evocat {
namespace metrics {
namespace {

using evocat::testing::DataPlaneGuard;
using evocat::testing::MakeScaleWorld;
using evocat::testing::ScaleWorld;

std::vector<std::unique_ptr<Measure>> AllMeasures() {
  std::vector<std::unique_ptr<Measure>> measures;
  measures.push_back(std::make_unique<CtbIl>(2));
  measures.push_back(std::make_unique<DbIl>());
  measures.push_back(std::make_unique<EbIl>());
  measures.push_back(std::make_unique<IntervalDisclosure>(10.0));
  measures.push_back(std::make_unique<DistanceBasedRecordLinkage>());
  measures.push_back(std::make_unique<ProbabilisticRecordLinkage>(10));
  measures.push_back(std::make_unique<RankSwappingRecordLinkage>(15.0));
  return measures;
}

/// Draws a batch of 1..max_cells distinct-cell changes, applies them to
/// `masked` and returns the deltas. Identical RNG state in = identical
/// batch out, which is what lets two planes replay the same walk.
std::vector<CellDelta> DrawBatch(Dataset* masked,
                                 const std::vector<int>& attrs, Rng* rng,
                                 int max_cells) {
  int cells = static_cast<int>(rng->UniformInt(1, max_cells));
  std::map<std::pair<int64_t, int>, CellDelta> unique;
  for (int c = 0; c < cells; ++c) {
    int64_t row = static_cast<int64_t>(
        rng->UniformIndex(static_cast<size_t>(masked->num_rows())));
    int attr = attrs[rng->UniformIndex(attrs.size())];
    int32_t card = masked->schema().attribute(attr).cardinality();
    auto new_code = static_cast<int32_t>(rng->UniformInt(0, card - 1));
    auto key = std::make_pair(row, attr);
    auto it = unique.find(key);
    if (it == unique.end()) {
      unique.emplace(key, CellDelta{row, attr, masked->Code(row, attr),
                                    new_code});
    } else {
      it->second.new_code = new_code;
    }
  }
  std::vector<CellDelta> deltas;
  for (auto& [key, delta] : unique) {
    masked->SetCode(delta.row, delta.attr, delta.new_code);
    deltas.push_back(delta);
  }
  return deltas;
}

/// One full walk of a measure under the given data plane: every score the
/// state reports (after each apply, each revert, the forced rebuild and its
/// revert) plus the RNG's next draw at the end.
struct Trace {
  std::vector<double> scores;
  uint64_t final_draw = 0;
};

Trace RunWalk(const Measure& measure, const ScaleWorld& world, uint64_t seed,
              int steps, const DataPlaneConfig& config, bool cross_check) {
  DataPlaneGuard guard(config);
  auto bound =
      std::move(measure.Bind(world.original, world.attrs)).ValueOrDie();
  Dataset masked = world.masked.Clone();
  auto state = bound->BindState(masked);

  Trace trace;
  trace.scores.push_back(state->Score());
  if (cross_check) {
    EXPECT_NEAR(state->Score(), bound->Compute(masked), 1e-9)
        << measure.Name() << " initial";
  }

  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    auto deltas = DrawBatch(&masked, world.attrs, &rng, 4);
    state->ApplyDelta(masked, deltas);
    trace.scores.push_back(state->Score());
    if (cross_check) {
      EXPECT_NEAR(state->Score(), bound->Compute(masked), 1e-9)
          << measure.Name() << " step " << step;
    }
    if (step % 3 == 2) {
      state->Revert();
      trace.scores.push_back(state->Score());
      state->ApplyDelta(masked, deltas);
      trace.scores.push_back(state->Score());
    }
  }

  // Rebuild-sized leg: force the fallback threshold down so the next batch
  // takes the full-rebuild path, then revert it.
  state->set_full_rebuild_threshold(1);
  Dataset before = masked.Clone();
  auto deltas = DrawBatch(&masked, world.attrs, &rng, 4);
  state->ApplyDelta(masked, deltas);
  trace.scores.push_back(state->Score());
  state->Revert();
  masked = std::move(before);
  trace.scores.push_back(state->Score());

  trace.final_draw = rng.NextU64();
  return trace;
}

void RunScaleOracle(int64_t rows, int steps) {
  ScaleWorld world = MakeScaleWorld(rows, 7000 + static_cast<uint64_t>(rows));
  DataPlaneConfig oracle_plane;  // legacy row-oriented path
  DataPlaneConfig fast_plane;
  fast_plane.sharded = true;
  fast_plane.packed = true;
  fast_plane.shards = 8;

  for (const auto& measure : AllMeasures()) {
    uint64_t seed = 900 + static_cast<uint64_t>(rows);
    Trace oracle = RunWalk(*measure, world, seed, steps, oracle_plane,
                           /*cross_check=*/rows <= 1000);
    Trace fast = RunWalk(*measure, world, seed, steps, fast_plane,
                         /*cross_check=*/false);
    ASSERT_EQ(oracle.scores.size(), fast.scores.size()) << measure->Name();
    for (size_t i = 0; i < oracle.scores.size(); ++i) {
      ASSERT_EQ(oracle.scores[i], fast.scores[i])
          << measure->Name() << " at " << rows << " rows diverged at score "
          << i << " (abs diff "
          << std::abs(oracle.scores[i] - fast.scores[i]) << ")";
    }
    EXPECT_EQ(oracle.final_draw, fast.final_draw)
        << measure->Name() << " consumed a different number of RNG draws";
  }
}

/// Fitness-level walk under `config`: the aggregated score after every
/// apply/revert, with optional per-step cross-checks against a from-scratch
/// Evaluate. `probed` (optional) receives the evaluator's probe report.
std::vector<double> RunFitnessWalk(
    const ScaleWorld& world, uint64_t seed, int steps,
    const DataPlaneConfig& config, const FitnessEvaluator::Options& options,
    bool cross_check,
    std::vector<std::pair<std::string, double>>* probed) {
  DataPlaneGuard guard(config);
  auto evaluator =
      std::move(FitnessEvaluator::Create(world.original, world.attrs, options))
          .ValueOrDie();
  Dataset masked = world.masked.Clone();
  auto state = evaluator->BindState(masked);
  std::vector<double> trace;
  trace.push_back(state->breakdown().score);
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    auto deltas = DrawBatch(&masked, world.attrs, &rng, 4);
    state->ApplyDelta(masked, deltas);
    trace.push_back(state->breakdown().score);
    if (cross_check) {
      EXPECT_NEAR(state->breakdown().score, evaluator->Evaluate(masked).score,
                  1e-9)
          << "probe walk step " << step;
    }
    if (step % 3 == 2) {
      state->Revert();
      trace.push_back(state->breakdown().score);
      state->ApplyDelta(masked, deltas);
      trace.push_back(state->breakdown().score);
    }
  }
  if (probed != nullptr) *probed = evaluator->probed_rebuild_fractions();
  return trace;
}

// Probe leg: the bind-time rebuild-fraction probe only moves *when* states
// rebuild, never what they compute, so a probe-on walk must still match
// from-scratch Evaluate at every step and report an in-range fraction for
// each of the seven measures.
TEST(ScaleOracleTest, ProbeOnFitnessWalkStaysExact) {
  ScaleWorld world = MakeScaleWorld(1000, 7001);
  DataPlaneConfig fast_plane;
  fast_plane.sharded = true;
  fast_plane.packed = true;
  fast_plane.shards = 8;
  FitnessEvaluator::Options options;
  options.prl_em_iterations = 10;
  options.probe_rebuild_fractions = true;
  std::vector<std::pair<std::string, double>> probed;
  RunFitnessWalk(world, 901, /*steps=*/9, fast_plane, options,
                 /*cross_check=*/true, &probed);
  ASSERT_EQ(probed.size(), 7u);
  for (const auto& [name, fraction] : probed) {
    EXPECT_GE(fraction, 0.01) << name;
    EXPECT_LE(fraction, 1.0) << name;
  }
}

// Pinned fractions bypass the probe entirely, restoring cross-run bit
// reproducibility: the probe-on trace equals the probe-off trace exactly and
// the probe reports nothing.
TEST(ScaleOracleTest, ProbeWithPinnedFractionsReplaysBitIdentically) {
  ScaleWorld world = MakeScaleWorld(1000, 7001);
  DataPlaneConfig fast_plane;
  fast_plane.sharded = true;
  fast_plane.packed = true;
  fast_plane.shards = 8;
  FitnessEvaluator::Options pinned;
  pinned.prl_em_iterations = 10;
  pinned.delta_rebuild_fraction = 0.4;  // pins every measure
  FitnessEvaluator::Options pinned_probe = pinned;
  pinned_probe.probe_rebuild_fractions = true;
  std::vector<std::pair<std::string, double>> probed;
  std::vector<double> base = RunFitnessWalk(world, 902, /*steps=*/9,
                                            fast_plane, pinned,
                                            /*cross_check=*/false, nullptr);
  std::vector<double> with_probe =
      RunFitnessWalk(world, 902, /*steps=*/9, fast_plane, pinned_probe,
                     /*cross_check=*/false, &probed);
  ASSERT_EQ(base.size(), with_probe.size());
  for (size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(base[i], with_probe[i]) << "diverged at score " << i;
  }
  EXPECT_TRUE(probed.empty());
}

TEST(ScaleOracleTest, AllMeasuresBitIdentical1k) {
  RunScaleOracle(1000, /*steps=*/12);
}

TEST(ScaleOracleTest, AllMeasuresBitIdentical10k) {
  RunScaleOracle(10000, /*steps=*/9);
}

// Registered as its own ctest entry (metrics/scale_oracle_100k, label
// `scale`); the tier-1 entry filters it out.
TEST(ScaleOracleTest, AllMeasuresBitIdenticalScale100k) {
  RunScaleOracle(100000, /*steps=*/6);
}

}  // namespace
}  // namespace metrics
}  // namespace evocat
