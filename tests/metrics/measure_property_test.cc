// Parameterized property sweep: every masking method instance of the paper's
// German/Flare population grid is checked against all seven measures for
// range, identity and consistency invariants. This is the broad net that
// catches metric/method interactions the targeted unit tests miss.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "metrics/ctbil.h"
#include "metrics/dbil.h"
#include "metrics/dbrl.h"
#include "metrics/ebil.h"
#include "metrics/fitness.h"
#include "metrics/interval_disclosure.h"
#include "metrics/prl.h"
#include "metrics/rsrl.h"
#include "protection/population_builder.h"

namespace evocat {
namespace metrics {
namespace {

struct SweepFixture {
  Dataset original;
  std::vector<int> attrs;
  std::vector<protection::ProtectedFile> files;

  SweepFixture() {
    auto profile = datagen::SolarFlareProfile();
    profile.num_records = 150;  // keep the O(n^2) attacks cheap
    original = datagen::Generate(profile, 99).ValueOrDie();
    attrs = datagen::ProtectedAttributeIndices(profile, original).ValueOrDie();
    files = protection::BuildProtections(
                original, attrs, protection::GermanFlarePopulationSpec(), 5)
                .ValueOrDie();
  }

  static SweepFixture& Get() {
    static auto* fixture = new SweepFixture();
    return *fixture;
  }
};

std::vector<std::unique_ptr<Measure>> AllMeasures() {
  std::vector<std::unique_ptr<Measure>> measures;
  measures.push_back(std::make_unique<CtbIl>(2));
  measures.push_back(std::make_unique<DbIl>());
  measures.push_back(std::make_unique<EbIl>());
  measures.push_back(std::make_unique<IntervalDisclosure>(10.0));
  measures.push_back(std::make_unique<DistanceBasedRecordLinkage>());
  measures.push_back(std::make_unique<ProbabilisticRecordLinkage>(30));
  measures.push_back(std::make_unique<RankSwappingRecordLinkage>(15.0));
  return measures;
}

class MeasureSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MeasureSweepTest, AllMeasuresBoundedAndFiniteOnEveryMasking) {
  auto& fixture = SweepFixture::Get();
  const auto& file = fixture.files[GetParam()];
  for (const auto& measure : AllMeasures()) {
    auto result = measure->Compute(fixture.original, file.data, fixture.attrs);
    ASSERT_TRUE(result.ok()) << measure->Name() << " on " << file.method_label;
    double value = result.ValueOrDie();
    EXPECT_TRUE(std::isfinite(value))
        << measure->Name() << " on " << file.method_label;
    EXPECT_GE(value, 0.0) << measure->Name() << " on " << file.method_label;
    EXPECT_LE(value, 100.0) << measure->Name() << " on " << file.method_label;
  }
}

TEST_P(MeasureSweepTest, FitnessBreakdownInternallyConsistent) {
  auto& fixture = SweepFixture::Get();
  const auto& file = fixture.files[GetParam()];
  FitnessEvaluator::Options options;
  options.prl_em_iterations = 30;
  auto evaluator = std::move(FitnessEvaluator::Create(fixture.original,
                                                      fixture.attrs, options))
                       .ValueOrDie();
  FitnessBreakdown b = evaluator->Evaluate(file.data);
  EXPECT_NEAR(b.il, (b.ctbil + b.dbil + b.ebil) / 3.0, 1e-9)
      << file.method_label;
  EXPECT_NEAR(b.dr, (b.id + b.dbrl + b.prl + b.rsrl) / 4.0, 1e-9)
      << file.method_label;
  EXPECT_GE(b.score, std::min(b.il, b.dr) - 1e-9);
  EXPECT_LE(b.score, std::max(b.il, b.dr) + 1e-9);
}

// 104 methods in the German/Flare grid.
INSTANTIATE_TEST_SUITE_P(GermanFlareGrid, MeasureSweepTest,
                         ::testing::Range<size_t>(0, 104));

// Bound/evaluate equivalence: the one-shot Measure::Compute and a reused
// BoundMeasure must agree exactly.
TEST(BindEquivalenceTest, OneShotEqualsBound) {
  auto& fixture = SweepFixture::Get();
  for (const auto& measure : AllMeasures()) {
    auto bound =
        std::move(measure->Bind(fixture.original, fixture.attrs)).ValueOrDie();
    for (size_t i = 0; i < fixture.files.size(); i += 20) {
      double one_shot = measure
                            ->Compute(fixture.original, fixture.files[i].data,
                                      fixture.attrs)
                            .ValueOrDie();
      double reused = bound->Compute(fixture.files[i].data);
      EXPECT_DOUBLE_EQ(one_shot, reused)
          << measure->Name() << " on " << fixture.files[i].method_label;
    }
  }
}

TEST(MeasureKindTest, KindsAreDeclaredCorrectly) {
  EXPECT_EQ(CtbIl().Kind(), MeasureKind::kInformationLoss);
  EXPECT_EQ(DbIl().Kind(), MeasureKind::kInformationLoss);
  EXPECT_EQ(EbIl().Kind(), MeasureKind::kInformationLoss);
  EXPECT_EQ(IntervalDisclosure().Kind(), MeasureKind::kDisclosureRisk);
  EXPECT_EQ(DistanceBasedRecordLinkage().Kind(), MeasureKind::kDisclosureRisk);
  EXPECT_EQ(ProbabilisticRecordLinkage().Kind(), MeasureKind::kDisclosureRisk);
  EXPECT_EQ(RankSwappingRecordLinkage().Kind(), MeasureKind::kDisclosureRisk);
}

TEST(MeasureNameTest, NamesAreStable) {
  EXPECT_EQ(CtbIl().Name(), "CTBIL");
  EXPECT_EQ(DbIl().Name(), "DBIL");
  EXPECT_EQ(EbIl().Name(), "EBIL");
  EXPECT_EQ(IntervalDisclosure().Name(), "ID");
  EXPECT_EQ(DistanceBasedRecordLinkage().Name(), "DBRL");
  EXPECT_EQ(ProbabilisticRecordLinkage().Name(), "PRL");
  EXPECT_EQ(RankSwappingRecordLinkage().Name(), "RSRL");
}

}  // namespace
}  // namespace metrics
}  // namespace evocat
