// Integration tests asserting the paper's qualitative findings end to end on
// scaled-down (fast) versions of the real experiment pipeline. These are the
// "does the reproduction reproduce" checks; the full-size runs live in
// bench/.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "experiments/report.h"
#include "experiments/runner.h"

namespace evocat {
namespace experiments {
namespace {

// Flare-like but 200 records for speed; keeps the paper's protected
// cardinalities (8/7/5) which drive the balance behaviour.
DatasetCase SmallFlare() {
  DatasetCase dataset_case = FlareCase();
  dataset_case.profile.num_records = 200;
  return dataset_case;
}

DatasetCase SmallAdult() {
  DatasetCase dataset_case = AdultCase();
  dataset_case.profile.num_records = 200;
  return dataset_case;
}

ExperimentOptions Options(metrics::ScoreAggregation aggregation,
                          int generations) {
  ExperimentOptions options;
  options.aggregation = aggregation;
  options.generations = generations;
  options.fitness.prl_em_iterations = 30;
  return options;
}

TEST(PaperPipelineTest, PopulationNeverDegradesAndImproves) {
  // Paper §3.1: the GA optimizes most protections; min/mean must not rise,
  // mean must measurably fall.
  auto result = RunExperiment(SmallAdult(),
                              Options(metrics::ScoreAggregation::kMean, 250))
                    .ValueOrDie();
  EXPECT_LE(result.final_scores.min, result.initial_scores.min + 1e-9);
  EXPECT_LT(result.final_scores.mean, result.initial_scores.mean);
  EXPECT_LE(result.final_scores.max, result.initial_scores.max + 1e-9);
}

TEST(PaperPipelineTest, MaxScoreBalancesBetterThanMean) {
  // Paper §3.2's headline: the final population under Eq. 2 is concentrated
  // around IL == DR compared to Eq. 1.
  auto mean_run = RunExperiment(SmallAdult(),
                                Options(metrics::ScoreAggregation::kMean, 400))
                      .ValueOrDie();
  auto max_run = RunExperiment(SmallAdult(),
                               Options(metrics::ScoreAggregation::kMax, 400))
                     .ValueOrDie();
  double mean_imbalance = MeanImbalance(mean_run.final_population);
  double max_imbalance = MeanImbalance(max_run.final_population);
  // Both improve on the initial cloud, but Eq.2 must not be worse than Eq.1
  // on balance (paper: clearly better).
  EXPECT_LE(max_imbalance, mean_imbalance + 2.0);
  EXPECT_LT(max_imbalance, MeanImbalance(max_run.initial));
}

TEST(PaperPipelineTest, MinScoreBarelyMoves) {
  // Paper: "the improvement [of the min score] is very small" — enforce
  // that the min does not improve more than the mean does, in points.
  auto result = RunExperiment(SmallFlare(),
                              Options(metrics::ScoreAggregation::kMax, 300))
                    .ValueOrDie();
  double min_gain = result.initial_scores.min - result.final_scores.min;
  double mean_gain = result.initial_scores.mean - result.final_scores.mean;
  EXPECT_GE(min_gain, 0.0);
  EXPECT_LE(min_gain, mean_gain + 1e-9);
}

TEST(PaperPipelineTest, RobustnessRecoversRemovedElite) {
  // Paper §3.3: removing the best 10% of seeds still lands within a few
  // points of the full run's final min.
  auto full = RunExperiment(SmallFlare(),
                            Options(metrics::ScoreAggregation::kMax, 400))
                  .ValueOrDie();
  auto options = Options(metrics::ScoreAggregation::kMax, 400);
  options.remove_best_fraction = 0.10;
  auto reduced = RunExperiment(SmallFlare(), options).ValueOrDie();

  // The handicapped start is strictly worse...
  EXPECT_GT(reduced.initial_scores.min, full.initial_scores.min);
  // ...but evolution recovers most of the gap (generous 6-point budget on
  // this small fast instance; the paper reports ~1 point at full scale).
  EXPECT_LE(reduced.final_scores.min, full.final_scores.min + 6.0);
  // And it must recover at least part of its own initial handicap.
  EXPECT_LT(reduced.final_scores.min, reduced.initial_scores.min);
}

TEST(PaperPipelineTest, EvolutionHistoryMatchesFinalPopulation) {
  auto result = RunExperiment(SmallAdult(),
                              Options(metrics::ScoreAggregation::kMax, 100))
                    .ValueOrDie();
  ASSERT_FALSE(result.history.empty());
  const auto& last = result.history.back();
  EXPECT_NEAR(last.min_score, result.final_scores.min, 1e-9);
  EXPECT_NEAR(last.mean_score, result.final_scores.mean, 1e-9);
  EXPECT_NEAR(last.max_score, result.final_scores.max, 1e-9);
  // Final population is sorted ascending.
  for (size_t i = 1; i < result.final_population.size(); ++i) {
    EXPECT_LE(result.final_population[i - 1].score,
              result.final_population[i].score);
  }
}

TEST(PaperPipelineTest, TimingStatsShapeMatchesPaper) {
  // Fitness evaluation dominates generation time, and crossover generations
  // cost more than mutation generations on average (two offspring vs one,
  // serial engine).
  auto options = Options(metrics::ScoreAggregation::kMax, 200);
  auto dataset_case = SmallFlare();
  auto result = RunExperiment(dataset_case, options).ValueOrDie();
  const auto& stats = result.stats;
  ASSERT_GT(stats.mutation_generations, 0);
  ASSERT_GT(stats.crossover_generations, 0);
  double eval_time =
      stats.mutation_eval_seconds + stats.crossover_eval_seconds;
  double total_time =
      stats.mutation_total_seconds + stats.crossover_total_seconds;
  EXPECT_GT(eval_time / total_time, 0.5);  // fitness dominates
}

TEST(PaperPipelineTest, SeedsReproduceRuns) {
  auto options = Options(metrics::ScoreAggregation::kMax, 120);
  auto a = RunExperiment(SmallFlare(), options).ValueOrDie();
  auto b = RunExperiment(SmallFlare(), options).ValueOrDie();
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); i += 10) {
    EXPECT_DOUBLE_EQ(a.history[i].mean_score, b.history[i].mean_score);
  }
  // Different GA seed diverges.
  options.ga_seed = 777;
  auto c = RunExperiment(SmallFlare(), options).ValueOrDie();
  bool diverged = false;
  for (size_t i = 0; i < a.history.size(); ++i) {
    if (std::fabs(a.history[i].mean_score - c.history[i].mean_score) > 1e-12) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(PaperPipelineTest, OffspringEnterThePopulation) {
  // After a few hundred generations some survivors must be GA offspring
  // (origin tagged mutation<...> or cross<...>), demonstrating the GA found
  // protections no classical method produced.
  auto result = RunExperiment(SmallAdult(),
                              Options(metrics::ScoreAggregation::kMax, 400))
                    .ValueOrDie();
  int offspring = 0;
  for (const auto& member : result.final_population) {
    if (member.origin.rfind("mutation<", 0) == 0 ||
        member.origin.rfind("cross<", 0) == 0) {
      ++offspring;
    }
  }
  EXPECT_GT(offspring, 0);
}

}  // namespace
}  // namespace experiments
}  // namespace evocat
