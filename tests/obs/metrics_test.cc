#include "obs/metrics.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace evocat {
namespace obs {
namespace {

// The registry is process-wide, so every test uses its own family names.

TEST(CounterTest, SingleThreadedSumIsExact) {
  Counter* counter = MetricsRegistry::Global().GetCounter(
      "test_counter_single_total", "test counter");
  int64_t before = counter->Value();
  for (int i = 0; i < 1000; ++i) counter->Increment();
  counter->Add(500);
  EXPECT_EQ(counter->Value() - before, 1500);
}

TEST(CounterTest, ConcurrentWritersSumExactlyLikeTheSerialOracle) {
  Counter* counter = MetricsRegistry::Global().GetCounter(
      "test_counter_concurrent_total", "test counter");
  const int kThreads = 8;
  const int kIncrements = 50000;
  int64_t before = counter->Value();

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();

  // Serial oracle: kThreads * kIncrements increments must sum exactly —
  // striping must never lose a count.
  EXPECT_EQ(counter->Value() - before,
            static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(GaugeTest, SetAddAndDecrement) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test_gauge", "test gauge");
  gauge->Set(10);
  EXPECT_EQ(gauge->Value(), 10);
  gauge->Add(5);
  gauge->Decrement();
  EXPECT_EQ(gauge->Value(), 14);
  gauge->Set(0);
}

TEST(GaugeTest, ConcurrentBalancedUpdatesReturnToZero) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge(
      "test_gauge_balanced", "test gauge");
  const int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < 10000; ++i) {
        gauge->Increment();
        gauge->Decrement();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge->Value(), 0);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      "test_histogram_buckets", "test histogram", {},
      {0.1, 1.0, 10.0});
  histogram->Observe(0.05);   // bucket 0 (le 0.1)
  histogram->Observe(0.5);    // bucket 1 (le 1.0)
  histogram->Observe(5.0);    // bucket 2 (le 10.0)
  histogram->Observe(50.0);   // +Inf bucket
  histogram->Observe(0.1);    // boundary: le is inclusive -> bucket 0

  std::vector<int64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(histogram->Count(), 5);
  EXPECT_DOUBLE_EQ(histogram->Sum(), 0.05 + 0.5 + 5.0 + 50.0 + 0.1);
}

TEST(HistogramTest, ConcurrentObservationsCountExactly) {
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      "test_histogram_concurrent", "test histogram");
  const int kThreads = 8;
  const int kObservations = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kObservations; ++i) {
        histogram->Observe(0.001 * (t + 1));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(histogram->Count(),
            static_cast<int64_t>(kThreads) * kObservations);
  // The CAS-looped sum is exact too: every thread's contribution is an
  // integer multiple of 0.001*(t+1) observed kObservations times.
  double expected = 0.0;
  for (int t = 0; t < kThreads; ++t) expected += 0.001 * (t + 1) * kObservations;
  EXPECT_NEAR(histogram->Sum(), expected, expected * 1e-9);
  int64_t bucket_total = 0;
  for (int64_t c : histogram->BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, histogram->Count());
}

TEST(RegistryTest, SameNameAndLabelsReturnTheSameSeries) {
  Counter* a = MetricsRegistry::Global().GetCounter(
      "test_registry_identity_total", "help", {{"k", "v"}});
  Counter* b = MetricsRegistry::Global().GetCounter(
      "test_registry_identity_total", "other help ignored", {{"k", "v"}});
  EXPECT_EQ(a, b);
  Counter* other = MetricsRegistry::Global().GetCounter(
      "test_registry_identity_total", "help", {{"k", "w"}});
  EXPECT_NE(a, other);
}

TEST(RegistryTest, LabelOrderDoesNotSplitSeries) {
  Counter* a = MetricsRegistry::Global().GetCounter(
      "test_registry_label_order_total", "help",
      {{"a", "1"}, {"b", "2"}});
  Counter* b = MetricsRegistry::Global().GetCounter(
      "test_registry_label_order_total", "help",
      {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, CounterValueReadsWithoutRegistering) {
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test_registry_absent"), 0);
  Counter* counter = MetricsRegistry::Global().GetCounter(
      "test_registry_lookup_total", "help", {{"op", "x"}});
  counter->Add(7);
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test_registry_lookup_total",
                                                   {{"op", "x"}}),
            7);
  // Still absent: asking never registered it.
  EXPECT_EQ(MetricsRegistry::Global().CounterValue("test_registry_absent"), 0);
}

TEST(RegistryTest, CounterTotalsCarryRenderedSeriesNames) {
  Counter* counter = MetricsRegistry::Global().GetCounter(
      "test_registry_totals_total", "help", {{"op", "mutation"}});
  counter->Add(3);
  bool found = false;
  for (const CounterSample& sample :
       MetricsRegistry::Global().CounterTotals()) {
    if (sample.series == "test_registry_totals_total{op=\"mutation\"}") {
      found = true;
      EXPECT_GE(sample.value, 3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RegistryTest, TypeMismatchReturnsDetachedInstance) {
  MetricsRegistry::Global().GetCounter("test_registry_clash", "as counter");
  // Re-registering the family as a gauge must not crash or corrupt; the
  // detached instance is writable but never exported.
  Gauge* gauge =
      MetricsRegistry::Global().GetGauge("test_registry_clash", "as gauge");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(5);
  EXPECT_EQ(gauge->Value(), 5);
}

TEST(ExpositionTest, PrometheusTextHasHelpTypeAndSeries) {
  Counter* counter = MetricsRegistry::Global().GetCounter(
      "test_expo_counter_total", "Counts test \\ things\n exactly.",
      {{"op", "a\"b"}});
  counter->Add(2);
  MetricsRegistry::Global().GetGauge("test_expo_gauge", "A gauge.")->Set(4);
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      "test_expo_hist", "A histogram.", {}, {0.5, 1.0});
  histogram->Observe(0.4);
  histogram->Observe(2.0);

  std::string text = MetricsRegistry::Global().ToPrometheusText();
  EXPECT_NE(text.find("# HELP test_expo_counter_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_counter_total counter"),
            std::string::npos);
  // Label values escape backslash and quote.
  EXPECT_NE(text.find("test_expo_counter_total{op=\"a\\\"b\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE test_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_expo_gauge 4"), std::string::npos);
  // Histogram: cumulative buckets, +Inf equals _count.
  EXPECT_NE(text.find("# TYPE test_expo_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("test_expo_hist_bucket{le=\"0.5\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_expo_hist_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_expo_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_expo_hist_count 2"), std::string::npos) << text;
  // Help text escapes backslash and newline.
  EXPECT_NE(text.find("Counts test \\\\ things\\n exactly."),
            std::string::npos)
      << text;
}

TEST(ExpositionTest, NoDuplicateHelpOrTypeLines) {
  MetricsRegistry::Global().GetCounter("test_expo_dup_total", "help",
                                       {{"k", "1"}});
  MetricsRegistry::Global().GetCounter("test_expo_dup_total", "help",
                                       {{"k", "2"}});
  std::string text = MetricsRegistry::Global().ToPrometheusText();
  size_t first = text.find("# TYPE test_expo_dup_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_expo_dup_total counter", first + 1),
            std::string::npos);
}

TEST(KillSwitchTest, DisabledWritesAreNoOps) {
  Counter* counter = MetricsRegistry::Global().GetCounter(
      "test_killswitch_total", "help");
  Gauge* gauge =
      MetricsRegistry::Global().GetGauge("test_killswitch_gauge", "help");
  Histogram* histogram = MetricsRegistry::Global().GetHistogram(
      "test_killswitch_hist", "help");

  ASSERT_TRUE(MetricsEnabled());
  counter->Increment();
  SetMetricsEnabled(false);
  counter->Add(100);
  gauge->Set(42);
  histogram->Observe(1.0);
  SetMetricsEnabled(true);

  EXPECT_EQ(counter->Value(), 1);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace evocat
