// Off-vs-on oracle for the telemetry plane: the same JobSpec run with
// metrics + tracing fully enabled and fully disabled must produce
// bit-identical artifacts (scores, per-generation history, best protected
// file) — telemetry observes the run, never steers it. Also proves the
// RunArtifacts telemetry section survives a JSON round trip.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/artifacts_json.h"
#include "api/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace evocat {
namespace {

std::string TinyJobJson(uint64_t master_seed, bool telemetry) {
  return R"({
    "name": "telemetry-oracle",
    "source": {
      "kind": "synthetic",
      "profile": {
        "name": "tiny",
        "num_records": 60,
        "attributes": [
          {"name": "a0", "kind": "ordinal", "cardinality": 7},
          {"name": "a1", "kind": "nominal", "cardinality": 5},
          {"name": "a2", "kind": "nominal", "cardinality": 9}
        ],
        "protected_attributes": ["a0", "a1", "a2"]
      }
    },
    "methods": [
      {"name": "microaggregation", "grid": {"k": [3, 6]}},
      {"name": "pram", "grid": {"retain": [0.7]}},
      {"name": "rankswapping", "grid": {"p_percent": [10]}}
    ],
    "measures": {"aggregation": "mean", "prl_em_iterations": 10},
    "ga": {"generations": 10},
    "outputs": {"telemetry": )" +
         std::string(telemetry ? "true" : "false") + R"(},
    "seeds": {"master": )" + std::to_string(master_seed) + R"(}
  })";
}

api::RunArtifacts RunTiny(uint64_t seed, bool telemetry) {
  api::JobSpec spec =
      api::JobSpec::FromJsonText(TinyJobJson(seed, telemetry)).ValueOrDie();
  api::Session session;
  return session.Run(spec).ValueOrDie();
}

void ExpectBreakdownIdentical(const metrics::FitnessBreakdown& a,
                              const metrics::FitnessBreakdown& b) {
  EXPECT_EQ(a.score, b.score);
  EXPECT_EQ(a.il, b.il);
  EXPECT_EQ(a.dr, b.dr);
}

/// Everything outside the telemetry section must match bit for bit.
void ExpectArtifactsIdentical(const api::RunArtifacts& a,
                              const api::RunArtifacts& b) {
  EXPECT_EQ(a.num_rows, b.num_rows);
  EXPECT_EQ(a.population_size, b.population_size);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.initial_scores.min, b.initial_scores.min);
  EXPECT_EQ(a.initial_scores.mean, b.initial_scores.mean);
  EXPECT_EQ(a.initial_scores.max, b.initial_scores.max);
  EXPECT_EQ(a.final_scores.min, b.final_scores.min);
  EXPECT_EQ(a.final_scores.mean, b.final_scores.mean);
  EXPECT_EQ(a.final_scores.max, b.final_scores.max);
  ExpectBreakdownIdentical(a.best.fitness, b.best.fitness);
  EXPECT_EQ(a.best.origin, b.best.origin);

  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].min_score, b.history[i].min_score) << "gen " << i;
    EXPECT_EQ(a.history[i].mean_score, b.history[i].mean_score) << "gen " << i;
    EXPECT_EQ(a.history[i].max_score, b.history[i].max_score) << "gen " << i;
    EXPECT_EQ(a.history[i].accepted, b.history[i].accepted) << "gen " << i;
    EXPECT_EQ(a.history[i].evaluations, b.history[i].evaluations)
        << "gen " << i;
  }

  // The best protected file itself: cell-exact.
  ASSERT_EQ(a.best_data.num_rows(), b.best_data.num_rows());
  ASSERT_EQ(a.best_data.num_attributes(), b.best_data.num_attributes());
  for (int64_t r = 0; r < a.best_data.num_rows(); ++r) {
    for (int c = 0; c < a.best_data.num_attributes(); ++c) {
      ASSERT_EQ(a.best_data.Code(r, c), b.best_data.Code(r, c))
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(TelemetryOracleTest, EnabledVsDisabledRunsAreBitIdentical) {
  // Baseline: telemetry machinery fully off.
  obs::SetMetricsEnabled(false);
  api::RunArtifacts off = RunTiny(123, /*telemetry=*/false);
  EXPECT_FALSE(off.telemetry.enabled);

  // Everything on: metrics writes, trace spans, telemetry artifacts.
  obs::SetMetricsEnabled(true);
  obs::EnableTracing();
  api::RunArtifacts on = RunTiny(123, /*telemetry=*/true);
  obs::DisableTracing();

  EXPECT_TRUE(on.telemetry.enabled);
  ExpectArtifactsIdentical(off, on);
}

TEST(TelemetryOracleTest, TelemetrySectionCarriesTheRunProfile) {
  obs::SetMetricsEnabled(true);
  api::RunArtifacts artifacts = RunTiny(7, /*telemetry=*/true);
  const api::TelemetryArtifacts& telemetry = artifacts.telemetry;
  ASSERT_TRUE(telemetry.enabled);
  EXPECT_GT(telemetry.total_seconds, 0.0);
  EXPECT_GE(telemetry.load_seconds, 0.0);
  EXPECT_GE(telemetry.protect_seconds, 0.0);
  EXPECT_GE(telemetry.bind_seconds, 0.0);
  EXPECT_GE(telemetry.evolve_seconds, 0.0);
  // One timing sample per generation, even though history output is on by
  // default here; the series never depends on outputs.history.
  EXPECT_EQ(telemetry.generation_seconds.size(), 10u);
  EXPECT_EQ(telemetry.generation_eval_seconds.size(), 10u);
  // With metrics enabled the engine counters must have registered.
  bool saw_generations = false;
  for (const auto& counter : telemetry.counters) {
    if (counter.first.rfind("evocat_engine_generations_total", 0) == 0 &&
        counter.second > 0) {
      saw_generations = true;
    }
  }
  EXPECT_TRUE(saw_generations);
}

TEST(TelemetryOracleTest, TelemetryJsonRoundTrips) {
  obs::SetMetricsEnabled(true);
  api::RunArtifacts artifacts = RunTiny(9, /*telemetry=*/true);
  api::ArtifactsJsonOptions options;
  options.include_best_csv = false;
  std::string dumped = ArtifactsToJson(artifacts, options).Dump(2);

  Result<api::JsonValue> parsed = api::JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const api::JsonValue* telemetry = parsed.ValueOrDie().Find("telemetry");
  ASSERT_NE(telemetry, nullptr);

  const api::JsonValue* stages = telemetry->Find("stages");
  ASSERT_NE(stages, nullptr);
  for (const char* key : {"load_seconds", "protect_seconds", "bind_seconds",
                          "evolve_seconds", "total_seconds"}) {
    const api::JsonValue* value = stages->Find(key);
    ASSERT_NE(value, nullptr) << key;
    EXPECT_TRUE(value->is_number()) << key;
  }

  const api::JsonValue* generations = telemetry->Find("generation_seconds");
  ASSERT_NE(generations, nullptr);
  EXPECT_EQ(generations->size(),
            artifacts.telemetry.generation_seconds.size());
  const api::JsonValue* counters = telemetry->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  EXPECT_EQ(counters->members().size(), artifacts.telemetry.counters.size());
  for (const auto& counter : artifacts.telemetry.counters) {
    const api::JsonValue* value = counters->Find(counter.first);
    ASSERT_NE(value, nullptr) << counter.first;
    EXPECT_EQ(value->int_value(), counter.second) << counter.first;
  }

  // Telemetry off: the top-level section is omitted entirely. (The spec
  // echo still carries `outputs.telemetry: false`, so parse rather than
  // substring-search.)
  api::RunArtifacts off = RunTiny(9, /*telemetry=*/false);
  std::string off_dump = ArtifactsToJson(off, options).Dump(2);
  Result<api::JsonValue> off_parsed = api::JsonValue::Parse(off_dump);
  ASSERT_TRUE(off_parsed.ok()) << off_parsed.status().ToString();
  EXPECT_EQ(off_parsed.ValueOrDie().Find("telemetry"), nullptr);
}

}  // namespace
}  // namespace evocat
