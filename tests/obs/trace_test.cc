#include "obs/trace.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/json.h"

namespace evocat {
namespace obs {
namespace {

// Tracing state is process-wide; every test starts its own fresh ring.

TEST(TraceTest, DisabledSpansRecordNothing) {
  EnableTracing();
  DisableTracing();
  // The ring stays snapshot-able after DisableTracing, but new spans are
  // no-ops.
  { TraceSpan span("ignored"); }
  EXPECT_TRUE(SnapshotTrace().empty());
}

TEST(TraceTest, SpansCaptureNameCategoryAndDuration) {
  EnableTracing();
  {
    TraceSpan outer("outer", "test");
    TraceSpan inner("inner");
  }
  DisableTracing();

  std::vector<TraceEvent> events = SnapshotTrace();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it lands first in the ring.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_STREQ(events[0].category, "evocat");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_STREQ(events[1].category, "test");
  EXPECT_GE(events[0].duration_ns, 0);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
}

TEST(TraceTest, RingOverwritesOldestAndCountsDrops) {
  EnableTracing(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(std::string("span-") + std::to_string(i), "evocat");
  }
  DisableTracing();

  std::vector<TraceEvent> events = SnapshotTrace();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(DroppedTraceEvents(), 6);
  // Oldest first: the surviving events are the last four, in order.
  EXPECT_EQ(events[0].name, "span-6");
  EXPECT_EQ(events[3].name, "span-9");
}

TEST(TraceTest, EnableTracingClearsThePreviousRing) {
  EnableTracing(4);
  { TraceSpan span("old"); }
  EnableTracing(4);
  { TraceSpan span("new"); }
  DisableTracing();
  std::vector<TraceEvent> events = SnapshotTrace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "new");
  EXPECT_EQ(DroppedTraceEvents(), 0);
}

TEST(TraceTest, WindowSnapshotFiltersByStartTime) {
  EnableTracing();
  { TraceSpan span("before"); }
  int64_t begin = TraceNowNs();
  { TraceSpan span("inside"); }
  int64_t end = TraceNowNs();
  { TraceSpan span("after"); }
  DisableTracing();

  std::vector<TraceEvent> events = SnapshotTraceWindow(begin, end);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "inside");
}

TEST(TraceTest, ChromeJsonIsValidAndCarriesTheSpans) {
  EnableTracing();
  { TraceSpan span("alpha \"quoted\"", "cat"); }
  { TraceSpan span("beta"); }
  DisableTracing();

  std::string json_text = ChromeTraceJson(SnapshotTrace());
  Result<api::JsonValue> parsed = api::JsonValue::Parse(json_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json_text;
  const api::JsonValue& root = parsed.ValueOrDie();
  const api::JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2u);
  const api::JsonValue& first = events->at(0);
  ASSERT_NE(first.Find("name"), nullptr);
  EXPECT_EQ(first.Find("name")->string_value(), "alpha \"quoted\"");
  EXPECT_EQ(first.Find("cat")->string_value(), "cat");
  EXPECT_EQ(first.Find("ph")->string_value(), "X");
  EXPECT_NE(first.Find("ts"), nullptr);
  EXPECT_NE(first.Find("dur"), nullptr);
  EXPECT_NE(first.Find("tid"), nullptr);
}

TEST(TraceTest, WriteChromeTraceRoundTripsThroughAFile) {
  EnableTracing();
  { TraceSpan span("filed"); }
  DisableTracing();

  std::string path =
      ::testing::TempDir() + "/trace_test_" + std::to_string(::getpid()) +
      ".trace.json";
  std::string error;
  ASSERT_TRUE(WriteChromeTrace(path, SnapshotTrace(), &error)) << error;
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  Result<api::JsonValue> parsed = api::JsonValue::Parse(contents.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::remove(path.c_str());

  // Unwritable path: reports the error instead of aborting.
  error.clear();
  EXPECT_FALSE(
      WriteChromeTrace("/nonexistent-dir/trace.json", SnapshotTrace(), &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace obs
}  // namespace evocat
