#include "datagen/generator.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/stats.h"
#include "datagen/profile.h"

namespace evocat {
namespace datagen {
namespace {

TEST(ProfileTest, PaperShapesMatch) {
  // Record counts, attribute counts and protected-attribute cardinalities as
  // stated in the paper's §3.
  auto housing = HousingProfile();
  EXPECT_EQ(housing.num_records, 1000);
  EXPECT_EQ(housing.attributes.size(), 11u);

  auto german = GermanCreditProfile();
  EXPECT_EQ(german.num_records, 1000);
  EXPECT_EQ(german.attributes.size(), 13u);

  auto flare = SolarFlareProfile();
  EXPECT_EQ(flare.num_records, 1066);
  EXPECT_EQ(flare.attributes.size(), 13u);

  auto adult = AdultProfile();
  EXPECT_EQ(adult.num_records, 1000);
  EXPECT_EQ(adult.attributes.size(), 8u);
}

struct ProtectedCardinalityCase {
  const char* profile;
  const char* attr;
  int cardinality;
};

class ProtectedCardinalityTest
    : public ::testing::TestWithParam<ProtectedCardinalityCase> {};

TEST_P(ProtectedCardinalityTest, MatchesPaper) {
  const auto& param = GetParam();
  auto profile = [&]() -> SyntheticProfile {
    std::string name = param.profile;
    if (name == "housing") return HousingProfile();
    if (name == "german") return GermanCreditProfile();
    if (name == "flare") return SolarFlareProfile();
    return AdultProfile();
  }();
  bool found = false;
  for (const auto& attr : profile.attributes) {
    if (attr.name == param.attr) {
      EXPECT_EQ(attr.cardinality, param.cardinality) << param.attr;
      found = true;
    }
  }
  EXPECT_TRUE(found) << param.attr << " missing in " << param.profile;
  // Protected attributes must be declared as such.
  bool is_protected = false;
  for (const auto& name : profile.protected_attributes) {
    if (name == param.attr) is_protected = true;
  }
  EXPECT_TRUE(is_protected) << param.attr;
}

INSTANTIATE_TEST_SUITE_P(
    PaperAttributes, ProtectedCardinalityTest,
    ::testing::Values(
        ProtectedCardinalityCase{"housing", "BUILT", 25},
        ProtectedCardinalityCase{"housing", "DEGREE", 8},
        ProtectedCardinalityCase{"housing", "GRADE1", 21},
        ProtectedCardinalityCase{"german", "EXISTACC", 5},
        ProtectedCardinalityCase{"german", "SAVINGS", 6},
        ProtectedCardinalityCase{"german", "PRESEMPLOY", 6},
        ProtectedCardinalityCase{"flare", "CLASS", 8},
        ProtectedCardinalityCase{"flare", "LARGSPOT", 7},
        ProtectedCardinalityCase{"flare", "SPOTDIST", 5},
        ProtectedCardinalityCase{"adult", "EDUCATION", 16},
        ProtectedCardinalityCase{"adult", "MARITAL_STATUS", 7},
        ProtectedCardinalityCase{"adult", "OCCUPATION", 14}));

TEST(GeneratorTest, ShapeMatchesProfile) {
  auto profile = AdultProfile();
  Dataset dataset = Generate(profile, 1).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), profile.num_records);
  EXPECT_EQ(dataset.num_attributes(),
            static_cast<int>(profile.attributes.size()));
  for (size_t a = 0; a < profile.attributes.size(); ++a) {
    EXPECT_EQ(dataset.schema().attribute(static_cast<int>(a)).cardinality(),
              profile.attributes[a].cardinality);
    EXPECT_EQ(dataset.schema().attribute(static_cast<int>(a)).kind(),
              profile.attributes[a].kind);
  }
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(GeneratorTest, DeterministicPerSeed) {
  auto profile = SolarFlareProfile();
  Dataset a = Generate(profile, 99).ValueOrDie();
  Dataset b = Generate(profile, 99).ValueOrDie();
  EXPECT_TRUE(a.SameCodes(b));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto profile = AdultProfile();
  Dataset a = Generate(profile, 1).ValueOrDie();
  Dataset b = Generate(profile, 2).ValueOrDie();
  EXPECT_FALSE(a.SameCodes(b));
}

TEST(GeneratorTest, FullDomainRegisteredEvenIfUnsampled) {
  auto profile = UniformTestProfile("t", 5, {50});
  Dataset dataset = Generate(profile, 3).ValueOrDie();
  // Only 5 records but all 50 categories exist in the dictionary.
  EXPECT_EQ(dataset.schema().attribute(0).cardinality(), 50);
}

TEST(GeneratorTest, MarginalSkewForZipfAttribute) {
  SyntheticProfile profile;
  profile.name = "skew";
  profile.num_records = 4000;
  SyntheticAttribute attr;
  attr.name = "S";
  attr.kind = AttrKind::kNominal;
  attr.cardinality = 10;
  attr.zipf_s = 1.2;
  attr.latent_weight = 0.0;  // pure Zipf marginal
  profile.attributes = {attr, attr};
  profile.attributes[1].name = "S2";
  Dataset dataset = Generate(profile, 5).ValueOrDie();
  auto counts = CategoryCounts(dataset, 0);
  EXPECT_GT(counts[0], counts[9] * 3);  // strong head/tail skew
}

TEST(GeneratorTest, LatentWeightInducesCorrelation) {
  // Two ordinal attributes fully driven by the latent factor must be highly
  // rank-correlated; with latent_weight=0 they must not be.
  auto make = [](double latent) {
    SyntheticProfile profile;
    profile.name = "corr";
    profile.num_records = 2000;
    SyntheticAttribute attr;
    attr.kind = AttrKind::kOrdinal;
    attr.cardinality = 9;
    attr.zipf_s = 0.0;
    attr.latent_weight = latent;
    attr.name = "X";
    profile.attributes.push_back(attr);
    attr.name = "Y";
    profile.attributes.push_back(attr);
    return Generate(profile, 17).ValueOrDie();
  };
  auto correlation = [](const Dataset& dataset) {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    auto n = static_cast<double>(dataset.num_rows());
    for (int64_t r = 0; r < dataset.num_rows(); ++r) {
      double x = dataset.Code(r, 0), y = dataset.Code(r, 1);
      sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
    }
    double cov = sxy / n - (sx / n) * (sy / n);
    double vx = sxx / n - (sx / n) * (sx / n);
    double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  EXPECT_GT(correlation(make(1.0)), 0.8);
  EXPECT_LT(std::fabs(correlation(make(0.0))), 0.1);
}

TEST(GeneratorTest, RejectsDegenerateProfiles) {
  SyntheticProfile empty;
  empty.name = "empty";
  empty.num_records = 10;
  EXPECT_FALSE(Generate(empty, 1).ok());

  auto no_rows = AdultProfile();
  no_rows.num_records = 0;
  EXPECT_FALSE(Generate(no_rows, 1).ok());

  auto bad_card = AdultProfile();
  bad_card.attributes[0].cardinality = 1;
  EXPECT_FALSE(Generate(bad_card, 1).ok());

  auto bad_latent = AdultProfile();
  bad_latent.attributes[0].latent_weight = 1.5;
  EXPECT_FALSE(Generate(bad_latent, 1).ok());
}

TEST(GeneratorTest, ProtectedAttributeIndicesResolve) {
  auto profile = GermanCreditProfile();
  Dataset dataset = Generate(profile, 1).ValueOrDie();
  auto attrs = ProtectedAttributeIndices(profile, dataset).ValueOrDie();
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(dataset.schema().attribute(attrs[0]).name(), "EXISTACC");
  EXPECT_EQ(dataset.schema().attribute(attrs[1]).name(), "SAVINGS");
  EXPECT_EQ(dataset.schema().attribute(attrs[2]).name(), "PRESEMPLOY");
}

TEST(GeneratorTest, AllPaperProfilesGenerateValidData) {
  for (const auto& profile :
       {HousingProfile(), GermanCreditProfile(), SolarFlareProfile(),
        AdultProfile()}) {
    Dataset dataset = Generate(profile, 7).ValueOrDie();
    EXPECT_TRUE(dataset.Validate().ok()) << profile.name;
    // Every protected attribute uses a healthy share of its domain.
    auto attrs = ProtectedAttributeIndices(profile, dataset).ValueOrDie();
    for (int attr : attrs) {
      auto counts = CategoryCounts(dataset, attr);
      int used = 0;
      for (int64_t c : counts) {
        if (c > 0) ++used;
      }
      EXPECT_GE(used, static_cast<int>(counts.size() / 2))
          << profile.name << " attr " << attr;
    }
  }
}

}  // namespace
}  // namespace datagen
}  // namespace evocat
