/// \file test_util.h
/// \brief Shared helpers for the evocat test suite.

#ifndef EVOCAT_TESTS_TEST_UTIL_H_
#define EVOCAT_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace evocat {
namespace testing {

/// \brief Attribute blueprint for BuildDataset.
struct TestAttr {
  std::string name;
  AttrKind kind;
  int cardinality;
};

/// \brief Builds a dataset with the given attributes (full domains
/// pre-registered as "<name>_<code>") and rows of codes.
inline Dataset BuildDataset(const std::vector<TestAttr>& attrs,
                            const std::vector<std::vector<int32_t>>& rows) {
  auto schema = std::make_shared<Schema>();
  for (const auto& spec : attrs) {
    Attribute attribute(spec.name, spec.kind);
    for (int c = 0; c < spec.cardinality; ++c) {
      attribute.dictionary().GetOrAdd(spec.name + "_" + std::to_string(c));
    }
    schema->AddAttribute(std::move(attribute));
  }
  Dataset dataset(schema);
  for (const auto& row : rows) {
    auto status = dataset.AppendRowCodes(row);
    if (!status.ok()) std::abort();
  }
  return dataset;
}

/// \brief All attribute indices of a dataset.
inline std::vector<int> AllAttrs(const Dataset& dataset) {
  std::vector<int> attrs;
  for (int a = 0; a < dataset.num_attributes(); ++a) attrs.push_back(a);
  return attrs;
}

/// \brief Number of cells that differ between two datasets over `attrs`.
inline int64_t CountDiffs(const Dataset& x, const Dataset& y,
                          const std::vector<int>& attrs) {
  int64_t diffs = 0;
  for (int attr : attrs) {
    for (int64_t r = 0; r < x.num_rows(); ++r) {
      if (x.Code(r, attr) != y.Code(r, attr)) ++diffs;
    }
  }
  return diffs;
}

}  // namespace testing
}  // namespace evocat

#endif  // EVOCAT_TESTS_TEST_UTIL_H_
