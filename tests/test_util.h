/// \file test_util.h
/// \brief Shared helpers for the evocat test suite.

#ifndef EVOCAT_TESTS_TEST_UTIL_H_
#define EVOCAT_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "datagen/generator.h"
#include "datagen/profile.h"
#include "metrics/plane.h"
#include "protection/pram.h"

namespace evocat {
namespace testing {

/// \brief Attribute blueprint for BuildDataset.
struct TestAttr {
  std::string name;
  AttrKind kind;
  int cardinality;
};

/// \brief Builds a dataset with the given attributes (full domains
/// pre-registered as "<name>_<code>") and rows of codes.
inline Dataset BuildDataset(const std::vector<TestAttr>& attrs,
                            const std::vector<std::vector<int32_t>>& rows) {
  auto schema = std::make_shared<Schema>();
  for (const auto& spec : attrs) {
    Attribute attribute(spec.name, spec.kind);
    for (int c = 0; c < spec.cardinality; ++c) {
      attribute.dictionary().GetOrAdd(spec.name + "_" + std::to_string(c));
    }
    schema->AddAttribute(std::move(attribute));
  }
  Dataset dataset(schema);
  for (const auto& row : rows) {
    auto status = dataset.AppendRowCodes(row);
    if (!status.ok()) std::abort();
  }
  return dataset;
}

/// \brief All attribute indices of a dataset.
inline std::vector<int> AllAttrs(const Dataset& dataset) {
  std::vector<int> attrs;
  for (int a = 0; a < dataset.num_attributes(); ++a) attrs.push_back(a);
  return attrs;
}

/// \brief Number of cells that differ between two datasets over `attrs`.
inline int64_t CountDiffs(const Dataset& x, const Dataset& y,
                          const std::vector<int>& attrs) {
  int64_t diffs = 0;
  for (int attr : attrs) {
    for (int64_t r = 0; r < x.num_rows(); ++r) {
      if (x.Code(r, attr) != y.Code(r, attr)) ++diffs;
    }
  }
  return diffs;
}

/// \brief RAII override of the process-wide data-plane configuration:
/// installs `config` for the scope, restores the previous plane on exit.
class DataPlaneGuard {
 public:
  explicit DataPlaneGuard(const metrics::DataPlaneConfig& config)
      : saved_(metrics::GetDataPlane()) {
    metrics::SetDataPlane(config);
  }
  ~DataPlaneGuard() { metrics::SetDataPlane(saved_); }
  DataPlaneGuard(const DataPlaneGuard&) = delete;
  DataPlaneGuard& operator=(const DataPlaneGuard&) = delete;

 private:
  metrics::DataPlaneConfig saved_;
};

/// \brief An (original, masked, protected-attrs) fixture at any record
/// count: the Adult-shaped synthetic profile scaled to `rows` and perturbed
/// by PRAM. The scale-parameterized oracle tests and benches run the same
/// shape from 10^3 to 10^6 rows.
struct ScaleWorld {
  Dataset original;
  Dataset masked;
  std::vector<int> attrs;
};

inline ScaleWorld MakeScaleWorld(int64_t rows, uint64_t seed) {
  auto profile = datagen::AdultProfile();
  profile.num_records = rows;
  ScaleWorld world;
  world.original = datagen::Generate(profile, seed).ValueOrDie();
  world.attrs = datagen::ProtectedAttributeIndices(profile, world.original)
                    .ValueOrDie();
  Rng rng(seed + 1);
  world.masked = protection::Pram(0.5)
                     .Protect(world.original, world.attrs, &rng)
                     .ValueOrDie();
  return world;
}

}  // namespace testing
}  // namespace evocat

#endif  // EVOCAT_TESTS_TEST_UTIL_H_
