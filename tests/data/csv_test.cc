#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace evocat {
namespace {

using testing::BuildDataset;
using testing::TestAttr;

TEST(CsvTest, ReadSimple) {
  std::istringstream in("A,B\nx,1\ny,2\nx,2\n");
  Dataset dataset = ReadCsvStream(in).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), 3);
  EXPECT_EQ(dataset.num_attributes(), 2);
  EXPECT_EQ(dataset.schema().attribute(0).name(), "A");
  EXPECT_EQ(dataset.Value(0, 0), "x");
  EXPECT_EQ(dataset.Value(2, 1), "2");
  EXPECT_EQ(dataset.Code(0, 0), dataset.Code(2, 0));  // both "x"
}

TEST(CsvTest, OrdinalAttributesMarked) {
  CsvReadOptions options;
  options.ordinal_attributes = {"B"};
  std::istringstream in("A,B\nx,1\ny,2\n");
  Dataset dataset = ReadCsvStream(in, options).ValueOrDie();
  EXPECT_EQ(dataset.schema().attribute(0).kind(), AttrKind::kNominal);
  EXPECT_EQ(dataset.schema().attribute(1).kind(), AttrKind::kOrdinal);
}

TEST(CsvTest, NoHeaderNamesColumns) {
  CsvReadOptions options;
  options.has_header = false;
  std::istringstream in("x,1\ny,2\n");
  Dataset dataset = ReadCsvStream(in, options).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), 2);
  EXPECT_EQ(dataset.schema().attribute(0).name(), "c0");
  EXPECT_EQ(dataset.schema().attribute(1).name(), "c1");
}

TEST(CsvTest, QuotedFields) {
  std::istringstream in("A,B\n\"a,with,commas\",\"quote \"\"q\"\"\"\n");
  Dataset dataset = ReadCsvStream(in).ValueOrDie();
  EXPECT_EQ(dataset.Value(0, 0), "a,with,commas");
  EXPECT_EQ(dataset.Value(0, 1), "quote \"q\"");
}

TEST(CsvTest, SkipsBlankLines) {
  std::istringstream in("A\nx\n\n\ny\n");
  Dataset dataset = ReadCsvStream(in).ValueOrDie();
  EXPECT_EQ(dataset.num_rows(), 2);
}

TEST(CsvTest, RejectsRaggedRows) {
  std::istringstream in("A,B\nx,1\nonly_one\n");
  auto result = ReadCsvStream(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The offending cell is named: row 3 of the file, first missing column.
  EXPECT_NE(result.status().message().find("line 3, column 2"),
            std::string::npos)
      << result.status().ToString();
}

TEST(CsvTest, RaggedRowErrorsNameFileLineAndColumn) {
  const std::string path = ::testing::TempDir() + "/evocat_csv_ragged.csv";
  {
    std::ofstream out(path);
    out << "A,B\nx,1\ny,2,extra\n";
  }
  auto result = ReadCsvFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(path), std::string::npos);
  EXPECT_NE(result.status().message().find("line 3, column 3"),
            std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(CsvTest, BindSchemaDecodesOntoExistingDictionaries) {
  std::istringstream original_in("A,B\nx,1\ny,2\n");
  Dataset original = ReadCsvStream(original_in).ValueOrDie();

  CsvReadOptions bound;
  bound.bind_schema = original.schema_ptr();
  std::istringstream masked_in("A,B\ny,1\nx,2\n");
  Dataset masked = ReadCsvStream(masked_in, bound).ValueOrDie();
  ASSERT_EQ(masked.num_rows(), 2);
  // Codes are comparable across the two files.
  EXPECT_EQ(masked.Code(0, 0), original.Code(1, 0));
  EXPECT_EQ(masked.Code(1, 0), original.Code(0, 0));
}

TEST(CsvTest, BindSchemaRejectsUnknownCategoryWithLineAndColumn) {
  std::istringstream original_in("A,B\nx,1\ny,2\n");
  Dataset original = ReadCsvStream(original_in).ValueOrDie();

  CsvReadOptions bound;
  bound.bind_schema = original.schema_ptr();
  std::istringstream masked_in("A,B\nx,1\nx,9\n");
  auto result = ReadCsvStream(masked_in, bound);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3, column 2"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("'9'"), std::string::npos);
}

TEST(CsvTest, BindSchemaRejectsReorderedColumns) {
  std::istringstream original_in("A,B\nx,1\ny,2\n");
  Dataset original = ReadCsvStream(original_in).ValueOrDie();
  CsvReadOptions bound;
  bound.bind_schema = original.schema_ptr();
  // Same columns, different order: must error instead of decoding values
  // against the wrong dictionaries.
  std::istringstream masked_in("B,A\n1,x\n");
  auto result = ReadCsvStream(masked_in, bound);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("column 1"), std::string::npos)
      << result.status().ToString();
}

TEST(CsvTest, BindSchemaRejectsAttributeCountMismatch) {
  std::istringstream original_in("A,B\nx,1\n");
  Dataset original = ReadCsvStream(original_in).ValueOrDie();
  CsvReadOptions bound;
  bound.bind_schema = original.schema_ptr();
  std::istringstream masked_in("A\nx\n");
  EXPECT_FALSE(ReadCsvStream(masked_in, bound).ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_FALSE(ReadCsvStream(in).ok());
}

TEST(CsvTest, CustomSeparator) {
  CsvReadOptions options;
  options.separator = ';';
  std::istringstream in("A;B\nx;y\n");
  Dataset dataset = ReadCsvStream(in, options).ValueOrDie();
  EXPECT_EQ(dataset.Value(0, 1), "y");
}

TEST(CsvTest, WriteProducesHeaderAndRows) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2},
                                  {"B", AttrKind::kNominal, 2}},
                                 {{0, 1}, {1, 0}});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsvStream(dataset, out).ok());
  EXPECT_EQ(out.str(), "A,B\nA_0,B_1\nA_1,B_0\n");
}

TEST(CsvTest, RoundTripPreservesValues) {
  std::istringstream in("NAME,GRADE\nalice,good\nbob,bad\nalice,bad\n");
  Dataset dataset = ReadCsvStream(in).ValueOrDie();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsvStream(dataset, out).ok());
  std::istringstream in2(out.str());
  Dataset reloaded = ReadCsvStream(in2).ValueOrDie();
  ASSERT_EQ(reloaded.num_rows(), dataset.num_rows());
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    for (int a = 0; a < dataset.num_attributes(); ++a) {
      EXPECT_EQ(reloaded.Value(r, a), dataset.Value(r, a));
    }
  }
}

TEST(CsvTest, RoundTripWithSeparatorInsideValues) {
  auto schema = std::make_shared<Schema>();
  schema->AddAttribute(Attribute("A", AttrKind::kNominal));
  Dataset dataset(schema);
  ASSERT_TRUE(dataset.AppendRowValues({"value,with,commas"}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsvStream(dataset, out).ok());
  std::istringstream in(out.str());
  Dataset reloaded = ReadCsvStream(in).ValueOrDie();
  EXPECT_EQ(reloaded.Value(0, 0), "value,with,commas");
}

TEST(CsvTest, FileIOErrors) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/dir/file.csv").ok());
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2}}, {{0}});
  EXPECT_FALSE(WriteCsvFile(dataset, "/nonexistent/dir/file.csv").ok());
}

TEST(CsvTest, FileRoundTrip) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 3}},
                                 {{0}, {1}, {2}, {1}});
  const std::string path = ::testing::TempDir() + "/evocat_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(dataset, path).ok());
  Dataset reloaded = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(reloaded.num_rows(), 4);
  EXPECT_EQ(reloaded.Value(3, 0), "A_1");
}

}  // namespace
}  // namespace evocat
