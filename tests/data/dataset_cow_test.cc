// Copy-on-write semantics of Dataset code columns: copies are cheap (shared
// buffers), mutating a child never changes its parent, and only the touched
// column detaches.

#include "data/dataset.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace evocat {
namespace {

using evocat::testing::BuildDataset;
using evocat::testing::TestAttr;

Dataset ThreeByFour() {
  return BuildDataset({{"A", AttrKind::kNominal, 4},
                       {"B", AttrKind::kOrdinal, 5},
                       {"C", AttrKind::kNominal, 3}},
                      {{0, 1, 2}, {1, 2, 0}, {2, 3, 1}, {3, 4, 2}});
}

TEST(DatasetCowTest, CloneSharesAllColumns) {
  Dataset parent = ThreeByFour();
  Dataset child = parent.Clone();
  for (int a = 0; a < parent.num_attributes(); ++a) {
    EXPECT_TRUE(child.SharesColumnStorage(a, parent));
  }
  EXPECT_TRUE(child.SameCodes(parent));
}

TEST(DatasetCowTest, MutatingChildNeverChangesParent) {
  Dataset parent = ThreeByFour();
  Dataset child = parent.Clone();
  child.SetCode(1, 1, 4);
  EXPECT_EQ(parent.Code(1, 1), 2);  // parent untouched
  EXPECT_EQ(child.Code(1, 1), 4);
  EXPECT_FALSE(child.SameCodes(parent));
}

TEST(DatasetCowTest, OnlyTouchedColumnDetaches) {
  Dataset parent = ThreeByFour();
  Dataset child = parent.Clone();
  child.SetCode(0, 1, 0);
  EXPECT_TRUE(child.SharesColumnStorage(0, parent));
  EXPECT_FALSE(child.SharesColumnStorage(1, parent));
  EXPECT_TRUE(child.SharesColumnStorage(2, parent));
}

TEST(DatasetCowTest, MutatingParentNeverChangesChild) {
  Dataset parent = ThreeByFour();
  Dataset child = parent.Clone();
  parent.SetCode(2, 0, 0);
  EXPECT_EQ(child.Code(2, 0), 2);
  EXPECT_EQ(parent.Code(2, 0), 0);
}

TEST(DatasetCowTest, WriteOnUnsharedColumnKeepsBuffer) {
  Dataset solo = ThreeByFour();
  const auto* before = &solo.column(0);
  solo.SetCode(0, 0, 1);  // no sibling: write in place
  EXPECT_EQ(&solo.column(0), before);
}

TEST(DatasetCowTest, ChainOfClonesIsolatesEveryGeneration) {
  Dataset a = ThreeByFour();
  Dataset b = a.Clone();
  Dataset c = b.Clone();
  c.SetCode(0, 2, 0);
  b.SetCode(0, 2, 1);
  EXPECT_EQ(a.Code(0, 2), 2);
  EXPECT_EQ(b.Code(0, 2), 1);
  EXPECT_EQ(c.Code(0, 2), 0);
}

TEST(DatasetCowTest, MutableColumnDetaches) {
  Dataset parent = ThreeByFour();
  Dataset child = parent.Clone();
  child.mutable_column(2)[0] = 0;
  EXPECT_EQ(parent.Code(0, 2), 2);
  EXPECT_EQ(child.Code(0, 2), 0);
}

TEST(DatasetCowTest, AppendAfterCloneLeavesParentLength) {
  Dataset parent = ThreeByFour();
  Dataset child = parent.Clone();
  ASSERT_TRUE(child.AppendRowCodes({0, 0, 0}).ok());
  EXPECT_EQ(parent.num_rows(), 4);
  EXPECT_EQ(child.num_rows(), 5);
}

}  // namespace
}  // namespace evocat
