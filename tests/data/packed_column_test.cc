// Property tests for the bit-packed columnar storage: exact round-trips at
// every bit width the dictionary cardinalities can produce, cross-word
// straddle handling at awkward row counts, single-cell writes, the counting
// kernel, and copy-on-write semantics mirroring dataset_cow_test.cc.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"
#include "data/packed_column.h"

namespace evocat {
namespace {

using evocat::testing::BuildDataset;
using evocat::testing::TestAttr;

std::vector<int32_t> RandomCodes(int64_t rows, int32_t cardinality,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> codes(static_cast<size_t>(rows));
  for (auto& code : codes) {
    code = static_cast<int32_t>(rng.UniformIndex(
        static_cast<size_t>(cardinality)));
  }
  return codes;
}

TEST(PackedColumnTest, BitWidthMatchesCardinality) {
  EXPECT_EQ(PackedColumn::BitWidthFor(2), 1);
  EXPECT_EQ(PackedColumn::BitWidthFor(3), 2);
  EXPECT_EQ(PackedColumn::BitWidthFor(4), 2);
  EXPECT_EQ(PackedColumn::BitWidthFor(5), 3);
  EXPECT_EQ(PackedColumn::BitWidthFor(16), 4);
  EXPECT_EQ(PackedColumn::BitWidthFor(17), 5);
  EXPECT_EQ(PackedColumn::BitWidthFor(65536), 16);
}

TEST(PackedColumnTest, RoundTripsEveryWidthUpTo16Bits) {
  // Widths 1..16 via cardinalities around every power of two (2^k - 1,
  // 2^k, 2^k + 1): each must round-trip exactly through Get, Unpack and
  // the running-cursor ForEachRange, including values straddling words.
  for (int k = 1; k <= 16; ++k) {
    for (int32_t card : {(1 << k) - 1, 1 << k, (1 << k) + 1}) {
      if (card < 2) continue;
      // 131 rows: not a multiple of 64, so the tail word is partial.
      auto codes = RandomCodes(131, card, 1000 + static_cast<uint64_t>(k));
      PackedColumn packed = PackedColumn::Pack(codes, card);
      EXPECT_EQ(packed.size(), 131);
      EXPECT_EQ(packed.bit_width(), PackedColumn::BitWidthFor(card));
      EXPECT_EQ(packed.Unpack(), codes);
      for (size_t i = 0; i < codes.size(); ++i) {
        ASSERT_EQ(packed.Get(static_cast<int64_t>(i)), codes[i])
            << "card " << card << " row " << i;
      }
      packed.ForEachRange(0, packed.size(), [&](int64_t i, int32_t code) {
        ASSERT_EQ(code, codes[static_cast<size_t>(i)]);
      });
    }
  }
}

TEST(PackedColumnTest, OddRowCountsKeepTailExact) {
  // Row counts around the word boundary (rows % 64 != 0 in particular):
  // the last value must decode exactly even when its bits end mid-word.
  for (int64_t rows : {1, 7, 63, 64, 65, 127, 128, 129, 1000}) {
    auto codes = RandomCodes(rows, 11, static_cast<uint64_t>(rows));
    PackedColumn packed = PackedColumn::Pack(codes, 11);
    EXPECT_EQ(packed.Unpack(), codes) << rows << " rows";
  }
}

TEST(PackedColumnTest, SetOverwritesAcrossWordBoundaries) {
  // Width-5 values at 131 rows put cells on every straddle alignment;
  // rewriting each cell twice (max code, then the original) must leave
  // every *other* cell untouched.
  auto codes = RandomCodes(131, 17, 7);
  PackedColumn packed = PackedColumn::Pack(codes, 17);
  for (int64_t i = 0; i < packed.size(); ++i) {
    int32_t old_code = packed.Get(i);
    packed.Set(i, 16);
    ASSERT_EQ(packed.Get(i), 16);
    packed.Set(i, old_code);
  }
  EXPECT_EQ(packed.Unpack(), codes);
}

TEST(PackedColumnTest, AccumulateCountsMatchesSerialCount) {
  auto codes = RandomCodes(517, 9, 21);
  PackedColumn packed = PackedColumn::Pack(codes, 9);
  std::vector<int64_t> expected(9, 0);
  for (size_t i = 100; i < 400; ++i) {
    expected[static_cast<size_t>(codes[i])] += 1;
  }
  std::vector<int64_t> counts(9, 0);
  packed.AccumulateCounts(100, 400, counts.data());
  EXPECT_EQ(counts, expected);
}

TEST(PackedColumnTest, DecodeRangeMatchesScalarDecodeEveryWidth) {
  // The word-walk bulk decoder (and its SIMD byte-aligned fast paths at
  // widths 4/8/16) against the per-value scalar decode, over widths 1..16
  // with cardinalities 2^k - 1, 2^k, 2^k + 1. 517 rows: word-straddling
  // codes at every alignment for the non-power-of-two widths plus a partial
  // tail word.
  for (int k = 1; k <= 16; ++k) {
    for (int32_t card : {(1 << k) - 1, 1 << k, (1 << k) + 1}) {
      if (card < 2) continue;
      auto codes = RandomCodes(517, card, 4200 + static_cast<uint64_t>(k));
      PackedColumn packed = PackedColumn::Pack(codes, card);
      std::vector<int32_t> decoded(codes.size(), -1);
      packed.DecodeRange(0, packed.size(), decoded.data());
      for (size_t i = 0; i < codes.size(); ++i) {
        ASSERT_EQ(decoded[i], packed.Get(static_cast<int64_t>(i)))
            << "card " << card << " row " << i;
      }
      ASSERT_EQ(decoded, codes) << "card " << card;
    }
  }
}

TEST(PackedColumnTest, DecodeRangeHandlesMidWordAndEmptyRanges) {
  // Sub-ranges that start and end mid-word (including straddle-adjacent
  // offsets), single-value ranges and empty ranges, across straddling
  // (width 5) and byte-aligned SIMD (widths 4, 8, 16) layouts.
  for (int32_t card : {17, 16, 251, 40000}) {
    auto codes = RandomCodes(300, card, 77 + static_cast<uint64_t>(card));
    PackedColumn packed = PackedColumn::Pack(codes, card);
    const std::pair<int64_t, int64_t> ranges[] = {
        {0, 0},     {150, 150}, {0, 1},    {299, 300}, {1, 300},
        {63, 65},   {5, 133},   {12, 13},  {64, 128},  {31, 257}};
    for (const auto& [begin, end] : ranges) {
      std::vector<int32_t> decoded(static_cast<size_t>(end - begin) + 1,
                                   -7);
      decoded.back() = -7;  // canary past the range
      packed.DecodeRange(begin, end, decoded.data());
      for (int64_t i = begin; i < end; ++i) {
        ASSERT_EQ(decoded[static_cast<size_t>(i - begin)],
                  codes[static_cast<size_t>(i)])
            << "card " << card << " range [" << begin << ", " << end << ")";
      }
      EXPECT_EQ(decoded.back(), -7) << "decode wrote past the range";
    }
  }
}

TEST(PackedColumnTest, AccumulateCountsMatchesScalarEveryWidth) {
  // The counting kernel against a scalar Get loop at every width,
  // including mid-word shard boundaries (the sharded builds' call shape).
  for (int k = 1; k <= 16; ++k) {
    int32_t card = (1 << k) - 1;
    if (card < 2) card = 2;
    auto codes = RandomCodes(413, card, 9900 + static_cast<uint64_t>(k));
    PackedColumn packed = PackedColumn::Pack(codes, card);
    for (auto [begin, end] : {std::pair<int64_t, int64_t>{0, 413},
                              {37, 389}, {100, 100}, {412, 413}}) {
      std::vector<int64_t> expected(static_cast<size_t>(card), 0);
      for (int64_t i = begin; i < end; ++i) {
        expected[static_cast<size_t>(packed.Get(i))] += 1;
      }
      std::vector<int64_t> counts(static_cast<size_t>(card), 0);
      packed.AccumulateCounts(begin, end, counts.data());
      ASSERT_EQ(counts, expected) << "width " << k << " range [" << begin
                                  << ", " << end << ")";
    }
  }
}

TEST(PackedColumnTest, CopySharesStorageUntilFirstWrite) {
  // Mirrors dataset_cow_test.cc: a copy aliases the word buffer; the first
  // Set detaches a private copy and the sibling keeps its codes.
  auto codes = RandomCodes(100, 6, 33);
  PackedColumn a = PackedColumn::Pack(codes, 6);
  PackedColumn b = a;
  EXPECT_TRUE(a.SharesStorage(b));

  b.Set(50, 5);
  EXPECT_FALSE(a.SharesStorage(b));
  EXPECT_EQ(a.Get(50), codes[50]);
  EXPECT_EQ(b.Get(50), 5);

  // Writing the already-detached column again must not re-share.
  b.Set(51, 0);
  EXPECT_EQ(a.Get(51), codes[51]);
}

TEST(PackedTableTest, MirrorsDatasetColumns) {
  Dataset dataset = BuildDataset(
      {{"a", AttrKind::kNominal, 5},
       {"b", AttrKind::kOrdinal, 17},
       {"c", AttrKind::kNominal, 3}},
      {{0, 16, 2}, {4, 0, 1}, {2, 9, 0}, {1, 15, 2}, {3, 3, 1}});
  PackedTable table = PackedTable::FromDataset(dataset, {0, 2});
  ASSERT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.attrs(), (std::vector<int>{0, 2}));
  EXPECT_EQ(table.column(0).bit_width(), 3);
  EXPECT_EQ(table.column(1).bit_width(), 2);
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    EXPECT_EQ(table.Code(r, 0), dataset.Code(r, 0));
    EXPECT_EQ(table.Code(r, 1), dataset.Code(r, 2));
  }
  table.Set(2, 1, 2);
  EXPECT_EQ(table.Code(2, 1), 2);
  EXPECT_EQ(dataset.Code(2, 2), 0);  // the mirror never writes back
}

}  // namespace
}  // namespace evocat
