#include "data/schema.h"

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(AttributeTest, BasicProperties) {
  Attribute attr("COLOR", AttrKind::kNominal);
  EXPECT_EQ(attr.name(), "COLOR");
  EXPECT_EQ(attr.kind(), AttrKind::kNominal);
  EXPECT_EQ(attr.cardinality(), 0);
  attr.dictionary().GetOrAdd("red");
  attr.dictionary().GetOrAdd("blue");
  EXPECT_EQ(attr.cardinality(), 2);
}

TEST(AttributeTest, DictionaryIsShared) {
  Attribute attr("A", AttrKind::kOrdinal);
  auto dict_ptr = attr.dictionary_ptr();
  attr.dictionary().GetOrAdd("x");
  EXPECT_EQ(dict_ptr->size(), 1);
}

TEST(AttrKindTest, Names) {
  EXPECT_STREQ(AttrKindToString(AttrKind::kNominal), "nominal");
  EXPECT_STREQ(AttrKindToString(AttrKind::kOrdinal), "ordinal");
}

TEST(SchemaTest, AddAndAccess) {
  Schema schema;
  EXPECT_EQ(schema.num_attributes(), 0);
  int idx_a = schema.AddAttribute(Attribute("A", AttrKind::kNominal));
  int idx_b = schema.AddAttribute(Attribute("B", AttrKind::kOrdinal));
  EXPECT_EQ(idx_a, 0);
  EXPECT_EQ(idx_b, 1);
  EXPECT_EQ(schema.num_attributes(), 2);
  EXPECT_EQ(schema.attribute(0).name(), "A");
  EXPECT_EQ(schema.attribute(1).kind(), AttrKind::kOrdinal);
}

TEST(SchemaTest, IndexOf) {
  Schema schema;
  schema.AddAttribute(Attribute("A", AttrKind::kNominal));
  schema.AddAttribute(Attribute("B", AttrKind::kNominal));
  EXPECT_EQ(schema.IndexOf("B").ValueOrDie(), 1);
  auto missing = schema.IndexOf("C");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, IndicesOfPreservesOrder) {
  Schema schema;
  schema.AddAttribute(Attribute("A", AttrKind::kNominal));
  schema.AddAttribute(Attribute("B", AttrKind::kNominal));
  schema.AddAttribute(Attribute("C", AttrKind::kNominal));
  auto indices = schema.IndicesOf({"C", "A"}).ValueOrDie();
  EXPECT_EQ(indices, (std::vector<int>{2, 0}));
}

TEST(SchemaTest, IndicesOfFailsOnAnyMissing) {
  Schema schema;
  schema.AddAttribute(Attribute("A", AttrKind::kNominal));
  EXPECT_FALSE(schema.IndicesOf({"A", "missing"}).ok());
}

}  // namespace
}  // namespace evocat
