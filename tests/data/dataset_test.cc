#include "data/dataset.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace evocat {
namespace {

using testing::BuildDataset;
using testing::TestAttr;

TEST(DatasetTest, DefaultConstructedIsEmpty) {
  Dataset dataset;
  EXPECT_EQ(dataset.num_rows(), 0);
  EXPECT_EQ(dataset.num_attributes(), 0);
  EXPECT_EQ(dataset.num_cells(), 0);
}

TEST(DatasetTest, AppendRowCodesAndAccess) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 3},
                                  {"B", AttrKind::kOrdinal, 4}},
                                 {{0, 3}, {2, 1}});
  EXPECT_EQ(dataset.num_rows(), 2);
  EXPECT_EQ(dataset.Code(0, 0), 0);
  EXPECT_EQ(dataset.Code(0, 1), 3);
  EXPECT_EQ(dataset.Code(1, 0), 2);
  EXPECT_EQ(dataset.Value(1, 1), "B_1");
}

TEST(DatasetTest, AppendRowCodesRejectsWrongArity) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2}}, {});
  EXPECT_FALSE(dataset.AppendRowCodes({0, 1}).ok());
}

TEST(DatasetTest, AppendRowCodesRejectsInvalidCode) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2}}, {});
  Status status = dataset.AppendRowCodes({5});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dataset.num_rows(), 0);  // nothing partially appended
}

TEST(DatasetTest, AppendRowValuesGrowsDictionary) {
  auto schema = std::make_shared<Schema>();
  schema->AddAttribute(Attribute("A", AttrKind::kNominal));
  Dataset dataset(schema);
  ASSERT_TRUE(dataset.AppendRowValues({"x"}).ok());
  ASSERT_TRUE(dataset.AppendRowValues({"y"}).ok());
  ASSERT_TRUE(dataset.AppendRowValues({"x"}).ok());
  EXPECT_EQ(dataset.schema().attribute(0).cardinality(), 2);
  EXPECT_EQ(dataset.Code(2, 0), 0);
}

TEST(DatasetTest, SetCodeOverwrites) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 3}}, {{0}});
  dataset.SetCode(0, 0, 2);
  EXPECT_EQ(dataset.Code(0, 0), 2);
}

TEST(DatasetTest, CloneSharesSchemaCopiesCodes) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 3}}, {{1}});
  Dataset copy = dataset.Clone();
  EXPECT_EQ(copy.schema_ptr(), dataset.schema_ptr());
  EXPECT_TRUE(copy.SameCodes(dataset));
  copy.SetCode(0, 0, 2);
  EXPECT_EQ(dataset.Code(0, 0), 1);  // original untouched
  EXPECT_FALSE(copy.SameCodes(dataset));
}

TEST(DatasetTest, ValidateAcceptsConsistentData) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2},
                                  {"B", AttrKind::kNominal, 2}},
                                 {{0, 1}, {1, 0}});
  EXPECT_TRUE(dataset.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesCorruptedCode) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2}}, {{0}});
  dataset.SetCode(0, 0, 99);  // bypasses append-time validation
  Status status = dataset.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, ColumnAccess) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 3}}, {{0}, {2}, {1}});
  EXPECT_EQ(dataset.column(0), (std::vector<int32_t>{0, 2, 1}));
  dataset.mutable_column(0)[1] = 0;
  EXPECT_EQ(dataset.Code(1, 0), 0);
}

TEST(DatasetTest, NumCells) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2},
                                  {"B", AttrKind::kNominal, 2}},
                                 {{0, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(dataset.num_cells(), 6);
}

}  // namespace
}  // namespace evocat
