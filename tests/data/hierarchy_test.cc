#include "data/hierarchy.h"

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(BalancedHierarchyTest, StructureForNinaryFanoutTwo) {
  // 9 categories, fanout 2: levels of group counts 9 -> 5 -> 3 -> 2 -> 1.
  auto hierarchy = ValueHierarchy::BuildBalanced(9, 2).ValueOrDie();
  EXPECT_EQ(hierarchy.cardinality(), 9);
  EXPECT_EQ(hierarchy.num_levels(), 5);
  EXPECT_EQ(hierarchy.NumGroups(0), 9);
  EXPECT_EQ(hierarchy.NumGroups(1), 5);
  EXPECT_EQ(hierarchy.NumGroups(2), 3);
  EXPECT_EQ(hierarchy.NumGroups(3), 2);
  EXPECT_EQ(hierarchy.NumGroups(4), 1);
}

TEST(BalancedHierarchyTest, LevelZeroIsIdentity) {
  auto hierarchy = ValueHierarchy::BuildBalanced(6, 3).ValueOrDie();
  for (int32_t c = 0; c < 6; ++c) {
    EXPECT_EQ(hierarchy.GroupOf(c, 0), c);
    EXPECT_EQ(hierarchy.RepresentativeOf(c, 0), c);
  }
}

TEST(BalancedHierarchyTest, AdjacentCodesMergeFirst) {
  auto hierarchy = ValueHierarchy::BuildBalanced(8, 2).ValueOrDie();
  // Level 1 groups: {0,1}, {2,3}, {4,5}, {6,7}.
  EXPECT_EQ(hierarchy.GroupOf(0, 1), hierarchy.GroupOf(1, 1));
  EXPECT_NE(hierarchy.GroupOf(1, 1), hierarchy.GroupOf(2, 1));
  EXPECT_EQ(hierarchy.GroupOf(6, 1), hierarchy.GroupOf(7, 1));
}

TEST(BalancedHierarchyTest, TopLevelUnitesEverything) {
  for (int cardinality : {2, 5, 16, 25}) {
    for (int fanout : {2, 3, 4}) {
      auto hierarchy =
          ValueHierarchy::BuildBalanced(cardinality, fanout).ValueOrDie();
      int top = hierarchy.num_levels() - 1;
      EXPECT_EQ(hierarchy.NumGroups(top), 1);
      for (int32_t c = 1; c < cardinality; ++c) {
        EXPECT_EQ(hierarchy.GroupOf(c, top), hierarchy.GroupOf(0, top));
      }
    }
  }
}

TEST(BalancedHierarchyTest, LevelsCoarsenMonotonically) {
  auto hierarchy = ValueHierarchy::BuildBalanced(13, 3).ValueOrDie();
  for (int level = 1; level < hierarchy.num_levels(); ++level) {
    EXPECT_LT(hierarchy.NumGroups(level), hierarchy.NumGroups(level - 1));
    // Coarsening: same group at level-1 implies same group at level.
    for (int32_t a = 0; a < 13; ++a) {
      for (int32_t b = 0; b < 13; ++b) {
        if (hierarchy.GroupOf(a, level - 1) == hierarchy.GroupOf(b, level - 1)) {
          EXPECT_EQ(hierarchy.GroupOf(a, level), hierarchy.GroupOf(b, level));
        }
      }
    }
  }
}

TEST(BalancedHierarchyTest, RepresentativeIsGroupMember) {
  auto hierarchy = ValueHierarchy::BuildBalanced(11, 2).ValueOrDie();
  for (int level = 0; level < hierarchy.num_levels(); ++level) {
    for (int32_t c = 0; c < 11; ++c) {
      int32_t rep = hierarchy.RepresentativeOf(c, level);
      EXPECT_GE(rep, 0);
      EXPECT_LT(rep, 11);
      EXPECT_EQ(hierarchy.GroupOf(rep, level), hierarchy.GroupOf(c, level));
    }
  }
}

TEST(BalancedHierarchyTest, SingletonDomain) {
  auto hierarchy = ValueHierarchy::BuildBalanced(1, 2).ValueOrDie();
  EXPECT_EQ(hierarchy.num_levels(), 1);
  EXPECT_EQ(hierarchy.GroupOf(0, 0), 0);
  EXPECT_DOUBLE_EQ(hierarchy.SemanticDistance(0, 0), 0.0);
}

TEST(BalancedHierarchyTest, RejectsBadInputs) {
  EXPECT_FALSE(ValueHierarchy::BuildBalanced(0, 2).ok());
  EXPECT_FALSE(ValueHierarchy::BuildBalanced(5, 1).ok());
}

TEST(SemanticDistanceTest, ZeroIffEqualAndBounded) {
  auto hierarchy = ValueHierarchy::BuildBalanced(16, 2).ValueOrDie();
  for (int32_t a = 0; a < 16; ++a) {
    for (int32_t b = 0; b < 16; ++b) {
      double d = hierarchy.SemanticDistance(a, b);
      if (a == b) {
        EXPECT_DOUBLE_EQ(d, 0.0);
      } else {
        EXPECT_GT(d, 0.0);
        EXPECT_LE(d, 1.0);
      }
      EXPECT_DOUBLE_EQ(d, hierarchy.SemanticDistance(b, a));  // symmetric
    }
  }
}

TEST(SemanticDistanceTest, NearbyCodesCloserThanFarCodes) {
  auto hierarchy = ValueHierarchy::BuildBalanced(16, 2).ValueOrDie();
  // 0 and 1 merge at level 1; 0 and 15 merge only at the top.
  EXPECT_LT(hierarchy.SemanticDistance(0, 1), hierarchy.SemanticDistance(0, 15));
  EXPECT_DOUBLE_EQ(hierarchy.SemanticDistance(0, 15), 1.0);
}

TEST(FromLevelMapsTest, AcceptsValidCoarsening) {
  // 4 codes: {0,1}{2,3} then all-in-one.
  auto hierarchy = ValueHierarchy::FromLevelMaps(
                       4, {{0, 0, 1, 1}, {0, 0, 0, 0}})
                       .ValueOrDie();
  EXPECT_EQ(hierarchy.num_levels(), 3);
  EXPECT_EQ(hierarchy.GroupOf(1, 1), 0);
  EXPECT_EQ(hierarchy.GroupOf(2, 1), 1);
  EXPECT_EQ(hierarchy.LowestCommonLevel(0, 1), 1);
  EXPECT_EQ(hierarchy.LowestCommonLevel(0, 3), 2);
}

TEST(FromLevelMapsTest, RejectsSplitsAndSparseIds) {
  // Splits a level-1 group at level 2.
  EXPECT_FALSE(
      ValueHierarchy::FromLevelMaps(4, {{0, 0, 1, 1}, {0, 1, 1, 1}}).ok());
  // Non-dense group ids.
  EXPECT_FALSE(ValueHierarchy::FromLevelMaps(3, {{0, 2, 2}}).ok());
  // Wrong arity.
  EXPECT_FALSE(ValueHierarchy::FromLevelMaps(3, {{0, 0}}).ok());
  // Negative id.
  EXPECT_FALSE(ValueHierarchy::FromLevelMaps(2, {{-1, 0}}).ok());
}

}  // namespace
}  // namespace evocat
