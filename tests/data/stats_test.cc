#include "data/stats.h"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"

namespace evocat {
namespace {

using testing::BuildDataset;
using testing::TestAttr;

Dataset ThreeCategoryColumn() {
  // Codes: 0 x3, 1 x2, 2 x1.
  return BuildDataset({{"A", AttrKind::kOrdinal, 3}},
                      {{0}, {0}, {0}, {1}, {1}, {2}});
}

TEST(CategoryCountsTest, CountsPerCode) {
  Dataset dataset = ThreeCategoryColumn();
  EXPECT_EQ(CategoryCounts(dataset, 0), (std::vector<int64_t>{3, 2, 1}));
}

TEST(CategoryCountsTest, UnsampledCategoriesAreZero) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 4}}, {{1}});
  EXPECT_EQ(CategoryCounts(dataset, 0), (std::vector<int64_t>{0, 1, 0, 0}));
}

TEST(CategoryFrequenciesTest, NormalizedToOne) {
  Dataset dataset = ThreeCategoryColumn();
  auto freqs = CategoryFrequencies(dataset, 0);
  EXPECT_DOUBLE_EQ(freqs[0], 0.5);
  EXPECT_DOUBLE_EQ(freqs[1], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(freqs[2], 1.0 / 6.0);
}

TEST(ContingencyTableTest, UnivariateMatchesCounts) {
  Dataset dataset = ThreeCategoryColumn();
  auto table = ContingencyTable::Build(dataset, {0}).ValueOrDie();
  EXPECT_EQ(table.total(), 6);
  EXPECT_EQ(table.Count({0}), 3);
  EXPECT_EQ(table.Count({1}), 2);
  EXPECT_EQ(table.Count({2}), 1);
  EXPECT_EQ(table.num_cells(), 3u);
}

TEST(ContingencyTableTest, BivariateJointCounts) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2},
                                  {"B", AttrKind::kNominal, 2}},
                                 {{0, 0}, {0, 0}, {0, 1}, {1, 1}});
  auto table = ContingencyTable::Build(dataset, {0, 1}).ValueOrDie();
  EXPECT_EQ(table.Count({0, 0}), 2);
  EXPECT_EQ(table.Count({0, 1}), 1);
  EXPECT_EQ(table.Count({1, 1}), 1);
  EXPECT_EQ(table.Count({1, 0}), 0);
}

TEST(ContingencyTableTest, L1DistanceIdenticalIsZero) {
  Dataset dataset = ThreeCategoryColumn();
  auto a = ContingencyTable::Build(dataset, {0}).ValueOrDie();
  auto b = ContingencyTable::Build(dataset, {0}).ValueOrDie();
  EXPECT_EQ(a.L1Distance(b), 0);
}

TEST(ContingencyTableTest, L1DistanceCountsBothSides) {
  Dataset x = BuildDataset({{"A", AttrKind::kNominal, 3}}, {{0}, {0}, {1}});
  Dataset y = BuildDataset({{"A", AttrKind::kNominal, 3}}, {{0}, {2}, {2}});
  auto tx = ContingencyTable::Build(x, {0}).ValueOrDie();
  auto ty = ContingencyTable::Build(y, {0}).ValueOrDie();
  // x: {0:2, 1:1}; y: {0:1, 2:2} -> |2-1| + |1-0| + |0-2| = 4.
  EXPECT_EQ(tx.L1Distance(ty), 4);
  EXPECT_EQ(ty.L1Distance(tx), 4);  // symmetric
}

TEST(ContingencyTableTest, RejectsTooManyAttrs) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2},
                                  {"B", AttrKind::kNominal, 2},
                                  {"C", AttrKind::kNominal, 2},
                                  {"D", AttrKind::kNominal, 2},
                                  {"E", AttrKind::kNominal, 2}},
                                 {{0, 0, 0, 0, 0}});
  EXPECT_FALSE(ContingencyTable::Build(dataset, {0, 1, 2, 3, 4}).ok());
  EXPECT_FALSE(ContingencyTable::Build(dataset, {}).ok());
  EXPECT_FALSE(ContingencyTable::Build(dataset, {9}).ok());
}

TEST(ContingencyTableTest, PackKeyDistinctness) {
  // Different code tuples map to different keys (within 16-bit cardinality).
  auto k1 = ContingencyTable::PackKey({1, 2});
  auto k2 = ContingencyTable::PackKey({2, 1});
  auto k3 = ContingencyTable::PackKey({1, 2, 0});
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, k3);  // trailing zero attribute packs identically by design
}

/// The per-row scalar reference for AccumulateRangePacked: decode one code
/// at a time with Get and insert into the sparse map — the exact loop the
/// word-parallel kernel replaced.
std::unordered_map<uint64_t, int64_t> ScalarAccumulate(
    const std::vector<const PackedColumn*>& columns, int64_t begin,
    int64_t end) {
  std::unordered_map<uint64_t, int64_t> cells;
  for (int64_t r = begin; r < end; ++r) {
    uint64_t key = 0;
    for (size_t i = 0; i < columns.size(); ++i) {
      key |= (static_cast<uint64_t>(static_cast<uint32_t>(columns[i]->Get(r))) &
              0xFFFFu)
             << (16 * i);
    }
    cells[key] += 1;
  }
  return cells;
}

std::vector<int32_t> RandomCodes(int64_t rows, int32_t card, uint64_t seed) {
  std::vector<int32_t> codes(static_cast<size_t>(rows));
  uint64_t x = seed;
  for (auto& code : codes) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    code = static_cast<int32_t>((x >> 33) % static_cast<uint64_t>(card));
  }
  return codes;
}

TEST(ContingencyTableTest, AccumulateRangePackedMatchesScalarDecode) {
  // The dense word-parallel counting path against the scalar reference:
  // 1..4 columns of mixed widths (straddling and byte-aligned), ranges that
  // start/end mid-word and mid-block, and an empty range.
  const int32_t cards[4] = {7, 16, 251, 3};
  std::vector<PackedColumn> packed;
  for (int i = 0; i < 4; ++i) {
    packed.push_back(
        PackedColumn::Pack(RandomCodes(2500, cards[i], 50 + i), cards[i]));
  }
  for (size_t k = 1; k <= 4; ++k) {
    std::vector<const PackedColumn*> columns;
    for (size_t i = 0; i < k; ++i) columns.push_back(&packed[i]);
    for (auto [begin, end] : {std::pair<int64_t, int64_t>{0, 2500},
                              {37, 2411}, {1023, 1025}, {700, 700}}) {
      std::unordered_map<uint64_t, int64_t> cells;
      ContingencyTable::AccumulateRangePacked(columns, begin, end, &cells);
      EXPECT_EQ(cells, ScalarAccumulate(columns, begin, end))
          << k << " columns, range [" << begin << ", " << end << ")";
    }
  }
}

TEST(ContingencyTableTest, AccumulateRangePackedWideDomainTakesMapPath) {
  // Joint domains past the dense-scratch cap (two 16-bit columns = 32 bits)
  // must still agree with the scalar reference via the sparse-map path, and
  // accumulate on top of pre-existing cells.
  auto a = PackedColumn::Pack(RandomCodes(800, 40000, 9), 40000);
  auto b = PackedColumn::Pack(RandomCodes(800, 33000, 10), 33000);
  std::vector<const PackedColumn*> columns{&a, &b};
  auto expected = ScalarAccumulate(columns, 0, 800);
  expected[12345] += 5;  // pre-existing cell the kernel must add onto
  std::unordered_map<uint64_t, int64_t> cells;
  cells[12345] = 5;
  ContingencyTable::AccumulateRangePacked(columns, 0, 800, &cells);
  EXPECT_EQ(cells, expected);
}

TEST(CategoryMidranksTest, TieAwarePositions) {
  Dataset dataset = ThreeCategoryColumn();
  auto midranks = CategoryMidranks(dataset, 0);
  // Category 0 occupies positions 1..3 -> 2; category 1 positions 4..5 ->
  // 4.5; category 2 position 6 -> 6.
  EXPECT_DOUBLE_EQ(midranks[0], 2.0);
  EXPECT_DOUBLE_EQ(midranks[1], 4.5);
  EXPECT_DOUBLE_EQ(midranks[2], 6.0);
}

TEST(CategoryMidranksTest, EmptyCategoryGetsBoundary) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kOrdinal, 3}}, {{0}, {2}});
  auto midranks = CategoryMidranks(dataset, 0);
  EXPECT_DOUBLE_EQ(midranks[0], 1.0);
  EXPECT_DOUBLE_EQ(midranks[1], 1.5);  // between the two occupied positions
  EXPECT_DOUBLE_EQ(midranks[2], 2.0);
}

TEST(CategoryMidranksTest, MonotoneInCode) {
  Dataset dataset = ThreeCategoryColumn();
  auto midranks = CategoryMidranks(dataset, 0);
  for (size_t c = 1; c < midranks.size(); ++c) {
    EXPECT_GT(midranks[c], midranks[c - 1]);
  }
}

TEST(SubsetsOfSizeTest, EnumeratesLexicographically) {
  auto subsets = SubsetsOfSize(4, 2);
  ASSERT_EQ(subsets.size(), 6u);
  EXPECT_EQ(subsets[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(subsets[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(subsets[5], (std::vector<int>{2, 3}));
}

TEST(SubsetsOfSizeTest, EdgeCases) {
  EXPECT_EQ(SubsetsOfSize(3, 3).size(), 1u);
  EXPECT_EQ(SubsetsOfSize(3, 1).size(), 3u);
  EXPECT_TRUE(SubsetsOfSize(3, 0).empty());
  EXPECT_TRUE(SubsetsOfSize(2, 3).empty());
}

}  // namespace
}  // namespace evocat
