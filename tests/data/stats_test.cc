#include "data/stats.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace evocat {
namespace {

using testing::BuildDataset;
using testing::TestAttr;

Dataset ThreeCategoryColumn() {
  // Codes: 0 x3, 1 x2, 2 x1.
  return BuildDataset({{"A", AttrKind::kOrdinal, 3}},
                      {{0}, {0}, {0}, {1}, {1}, {2}});
}

TEST(CategoryCountsTest, CountsPerCode) {
  Dataset dataset = ThreeCategoryColumn();
  EXPECT_EQ(CategoryCounts(dataset, 0), (std::vector<int64_t>{3, 2, 1}));
}

TEST(CategoryCountsTest, UnsampledCategoriesAreZero) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 4}}, {{1}});
  EXPECT_EQ(CategoryCounts(dataset, 0), (std::vector<int64_t>{0, 1, 0, 0}));
}

TEST(CategoryFrequenciesTest, NormalizedToOne) {
  Dataset dataset = ThreeCategoryColumn();
  auto freqs = CategoryFrequencies(dataset, 0);
  EXPECT_DOUBLE_EQ(freqs[0], 0.5);
  EXPECT_DOUBLE_EQ(freqs[1], 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(freqs[2], 1.0 / 6.0);
}

TEST(ContingencyTableTest, UnivariateMatchesCounts) {
  Dataset dataset = ThreeCategoryColumn();
  auto table = ContingencyTable::Build(dataset, {0}).ValueOrDie();
  EXPECT_EQ(table.total(), 6);
  EXPECT_EQ(table.Count({0}), 3);
  EXPECT_EQ(table.Count({1}), 2);
  EXPECT_EQ(table.Count({2}), 1);
  EXPECT_EQ(table.num_cells(), 3u);
}

TEST(ContingencyTableTest, BivariateJointCounts) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2},
                                  {"B", AttrKind::kNominal, 2}},
                                 {{0, 0}, {0, 0}, {0, 1}, {1, 1}});
  auto table = ContingencyTable::Build(dataset, {0, 1}).ValueOrDie();
  EXPECT_EQ(table.Count({0, 0}), 2);
  EXPECT_EQ(table.Count({0, 1}), 1);
  EXPECT_EQ(table.Count({1, 1}), 1);
  EXPECT_EQ(table.Count({1, 0}), 0);
}

TEST(ContingencyTableTest, L1DistanceIdenticalIsZero) {
  Dataset dataset = ThreeCategoryColumn();
  auto a = ContingencyTable::Build(dataset, {0}).ValueOrDie();
  auto b = ContingencyTable::Build(dataset, {0}).ValueOrDie();
  EXPECT_EQ(a.L1Distance(b), 0);
}

TEST(ContingencyTableTest, L1DistanceCountsBothSides) {
  Dataset x = BuildDataset({{"A", AttrKind::kNominal, 3}}, {{0}, {0}, {1}});
  Dataset y = BuildDataset({{"A", AttrKind::kNominal, 3}}, {{0}, {2}, {2}});
  auto tx = ContingencyTable::Build(x, {0}).ValueOrDie();
  auto ty = ContingencyTable::Build(y, {0}).ValueOrDie();
  // x: {0:2, 1:1}; y: {0:1, 2:2} -> |2-1| + |1-0| + |0-2| = 4.
  EXPECT_EQ(tx.L1Distance(ty), 4);
  EXPECT_EQ(ty.L1Distance(tx), 4);  // symmetric
}

TEST(ContingencyTableTest, RejectsTooManyAttrs) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kNominal, 2},
                                  {"B", AttrKind::kNominal, 2},
                                  {"C", AttrKind::kNominal, 2},
                                  {"D", AttrKind::kNominal, 2},
                                  {"E", AttrKind::kNominal, 2}},
                                 {{0, 0, 0, 0, 0}});
  EXPECT_FALSE(ContingencyTable::Build(dataset, {0, 1, 2, 3, 4}).ok());
  EXPECT_FALSE(ContingencyTable::Build(dataset, {}).ok());
  EXPECT_FALSE(ContingencyTable::Build(dataset, {9}).ok());
}

TEST(ContingencyTableTest, PackKeyDistinctness) {
  // Different code tuples map to different keys (within 16-bit cardinality).
  auto k1 = ContingencyTable::PackKey({1, 2});
  auto k2 = ContingencyTable::PackKey({2, 1});
  auto k3 = ContingencyTable::PackKey({1, 2, 0});
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, k3);  // trailing zero attribute packs identically by design
}

TEST(CategoryMidranksTest, TieAwarePositions) {
  Dataset dataset = ThreeCategoryColumn();
  auto midranks = CategoryMidranks(dataset, 0);
  // Category 0 occupies positions 1..3 -> 2; category 1 positions 4..5 ->
  // 4.5; category 2 position 6 -> 6.
  EXPECT_DOUBLE_EQ(midranks[0], 2.0);
  EXPECT_DOUBLE_EQ(midranks[1], 4.5);
  EXPECT_DOUBLE_EQ(midranks[2], 6.0);
}

TEST(CategoryMidranksTest, EmptyCategoryGetsBoundary) {
  Dataset dataset = BuildDataset({{"A", AttrKind::kOrdinal, 3}}, {{0}, {2}});
  auto midranks = CategoryMidranks(dataset, 0);
  EXPECT_DOUBLE_EQ(midranks[0], 1.0);
  EXPECT_DOUBLE_EQ(midranks[1], 1.5);  // between the two occupied positions
  EXPECT_DOUBLE_EQ(midranks[2], 2.0);
}

TEST(CategoryMidranksTest, MonotoneInCode) {
  Dataset dataset = ThreeCategoryColumn();
  auto midranks = CategoryMidranks(dataset, 0);
  for (size_t c = 1; c < midranks.size(); ++c) {
    EXPECT_GT(midranks[c], midranks[c - 1]);
  }
}

TEST(SubsetsOfSizeTest, EnumeratesLexicographically) {
  auto subsets = SubsetsOfSize(4, 2);
  ASSERT_EQ(subsets.size(), 6u);
  EXPECT_EQ(subsets[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(subsets[1], (std::vector<int>{0, 2}));
  EXPECT_EQ(subsets[5], (std::vector<int>{2, 3}));
}

TEST(SubsetsOfSizeTest, EdgeCases) {
  EXPECT_EQ(SubsetsOfSize(3, 3).size(), 1u);
  EXPECT_EQ(SubsetsOfSize(3, 1).size(), 3u);
  EXPECT_TRUE(SubsetsOfSize(3, 0).empty());
  EXPECT_TRUE(SubsetsOfSize(2, 3).empty());
}

}  // namespace
}  // namespace evocat
