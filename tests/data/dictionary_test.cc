#include "data/dictionary.h"

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(DictionaryTest, StartsEmpty) {
  Dictionary dict;
  EXPECT_EQ(dict.size(), 0);
  EXPECT_TRUE(dict.values().empty());
}

TEST(DictionaryTest, GetOrAddAssignsDenseCodes) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd("a"), 0);
  EXPECT_EQ(dict.GetOrAdd("b"), 1);
  EXPECT_EQ(dict.GetOrAdd("c"), 2);
  EXPECT_EQ(dict.size(), 3);
}

TEST(DictionaryTest, GetOrAddIsIdempotent) {
  Dictionary dict;
  dict.GetOrAdd("a");
  dict.GetOrAdd("b");
  EXPECT_EQ(dict.GetOrAdd("a"), 0);
  EXPECT_EQ(dict.size(), 2);
}

TEST(DictionaryTest, RoundTripCodeValue) {
  Dictionary dict;
  dict.GetOrAdd("x");
  dict.GetOrAdd("y");
  EXPECT_EQ(dict.ValueOf(0), "x");
  EXPECT_EQ(dict.ValueOf(1), "y");
  EXPECT_EQ(dict.CodeOf("y").ValueOrDie(), 1);
}

TEST(DictionaryTest, CodeOfMissingIsNotFound) {
  Dictionary dict;
  dict.GetOrAdd("a");
  auto result = dict.CodeOf("zzz");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DictionaryTest, Contains) {
  Dictionary dict;
  dict.GetOrAdd("a");
  EXPECT_TRUE(dict.Contains("a"));
  EXPECT_FALSE(dict.Contains("b"));
}

TEST(DictionaryTest, IsValidCode) {
  Dictionary dict;
  dict.GetOrAdd("a");
  dict.GetOrAdd("b");
  EXPECT_TRUE(dict.IsValidCode(0));
  EXPECT_TRUE(dict.IsValidCode(1));
  EXPECT_FALSE(dict.IsValidCode(2));
  EXPECT_FALSE(dict.IsValidCode(-1));
}

TEST(DictionaryTest, InsertionOrderIsCodeOrder) {
  Dictionary dict;
  dict.GetOrAdd("low");
  dict.GetOrAdd("mid");
  dict.GetOrAdd("high");
  EXPECT_EQ(dict.values(), (std::vector<std::string>{"low", "mid", "high"}));
}

TEST(DictionaryTest, EmptyStringIsAValidCategory) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd(""), 0);
  EXPECT_TRUE(dict.Contains(""));
  EXPECT_EQ(dict.ValueOf(0), "");
}

}  // namespace
}  // namespace evocat
