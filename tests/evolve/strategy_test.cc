// Strategy subsystem tests: registry behaviour, and the determinism
// contract every strategy signs up to — same seed ⇒ bit-identical best
// individual whether the run executes on 1 worker or 4, and the
// generational strategy bit-identical to the raw engine.

#include "evolve/registry.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "api/session.h"
#include "common/task_scheduler.h"
#include "core/engine.h"
#include "datagen/generator.h"
#include "evolve/strategy.h"
#include "protection/population_builder.h"

namespace evocat {
namespace evolve {
namespace {

using evocat::testing::AllAttrs;

struct StrategyFixture {
  Dataset original;
  std::vector<int> attrs;
  std::unique_ptr<metrics::FitnessEvaluator> evaluator;

  StrategyFixture() {
    auto profile = datagen::UniformTestProfile("s", 120, {8, 6, 10});
    profile.attributes[0].kind = AttrKind::kOrdinal;
    for (auto& attr : profile.attributes) {
      attr.latent_weight = 0.4;
      attr.zipf_s = 0.5;
    }
    original = datagen::Generate(profile, 88).ValueOrDie();
    attrs = AllAttrs(original);
    evaluator = std::move(
        metrics::FitnessEvaluator::Create(original, attrs)).ValueOrDie();
  }

  std::vector<core::Individual> SeedPopulation(uint64_t seed) {
    protection::PopulationSpec spec;
    spec.microagg_ks = {3, 5};
    spec.microagg_orderings = {protection::MicroOrdering::kUnivariate};
    spec.bottom_fractions = {0.2};
    spec.top_fractions = {0.2};
    spec.recoding_group_sizes = {2, 3};
    spec.rankswap_percents = {5, 10, 15};
    spec.pram_retains = {0.8, 0.5, 0.3};
    auto files =
        protection::BuildProtections(original, attrs, spec, seed).ValueOrDie();
    std::vector<core::Individual> seeds;
    for (auto& file : files) {
      core::Individual individual;
      individual.data = std::move(file.data);
      individual.origin = std::move(file.method_label);
      seeds.push_back(std::move(individual));
    }
    return seeds;
  }
};

/// Runs `strategy` on a private scheduler with `threads` workers, so the
/// strategy's internal ParallelFor loops split across exactly that many
/// workers (1 = fully serial execution).
Result<core::EvolutionResult> RunOnScheduler(
    int threads, const EvolutionStrategy& strategy,
    const StrategyFixture& fixture, const core::GaConfig& config,
    std::vector<core::Individual> initial) {
  TaskScheduler scheduler(threads);
  Result<core::EvolutionResult> result(Status::Internal("not executed"));
  TaskScheduler::Group group;
  scheduler.Submit(&group, [&] {
    result = strategy.Run(fixture.evaluator.get(), config, std::move(initial),
                          nullptr);
  });
  scheduler.Wait(&group);
  return result;
}

void ExpectIdenticalResults(const core::EvolutionResult& a,
                            const core::EvolutionResult& b) {
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].generation, b.history[i].generation);
    EXPECT_EQ(a.history[i].island, b.history[i].island);
    EXPECT_EQ(a.history[i].op, b.history[i].op);
    EXPECT_DOUBLE_EQ(a.history[i].min_score, b.history[i].min_score);
    EXPECT_DOUBLE_EQ(a.history[i].mean_score, b.history[i].mean_score);
    EXPECT_DOUBLE_EQ(a.history[i].max_score, b.history[i].max_score);
    EXPECT_EQ(a.history[i].accepted, b.history[i].accepted);
  }
  ASSERT_EQ(a.population.size(), b.population.size());
  EXPECT_DOUBLE_EQ(a.population.best().score(), b.population.best().score());
  EXPECT_TRUE(a.population.best().data.SameCodes(b.population.best().data));
}

TEST(StrategyRegistryTest, ContainsBuiltinsAndRejectsUnknowns) {
  StrategyRegistry& registry = StrategyRegistry::Global();
  EXPECT_TRUE(registry.Contains("generational"));
  EXPECT_TRUE(registry.Contains("steady_state"));
  EXPECT_TRUE(registry.Contains("islands"));
  EXPECT_TRUE(registry.Contains("ISLANDS"));  // case-insensitive
  EXPECT_FALSE(registry.Contains("annealing"));

  auto unknown = registry.Create("annealing");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("islands"), std::string::npos);

  EXPECT_EQ(registry.Names(), (std::vector<std::string>{
                                  "generational", "islands", "steady_state"}));
}

TEST(StrategyRegistryTest, ValidatesParameters) {
  StrategyRegistry& registry = StrategyRegistry::Global();
  // Generational accepts no parameters at all.
  EXPECT_FALSE(registry.Create("generational", {{"lambda", "4"}}).ok());
  // Unknown key.
  EXPECT_FALSE(registry.Create("steady_state", {{"mu", "4"}}).ok());
  // Range checks.
  EXPECT_FALSE(registry.Create("steady_state", {{"lambda", "0"}}).ok());
  EXPECT_FALSE(registry.Create("islands", {{"islands", "0"}}).ok());
  EXPECT_FALSE(registry.Create("islands", {{"migration_interval", "0"}}).ok());
  EXPECT_FALSE(registry.Create("islands", {{"migrants", "-1"}}).ok());
  EXPECT_FALSE(registry.Create("islands", {{"parallel", "maybe"}}).ok());
  EXPECT_FALSE(registry.Create("islands", {{"stop_mode", "sometimes"}}).ok());
  EXPECT_TRUE(registry.Create("islands", {{"stop_mode", "global"}}).ok());
  EXPECT_TRUE(registry.Create("islands", {{"stop_mode", "per_island"}}).ok());
  // Malformed value.
  EXPECT_FALSE(registry.Create("steady_state", {{"lambda", "eight"}}).ok());
  // Valid configurations construct.
  EXPECT_TRUE(registry.Create("steady_state", {{"lambda", "4"}}).ok());
  EXPECT_TRUE(registry
                  .Create("islands", {{"islands", "2"},
                                      {"migration_interval", "5"},
                                      {"migrants", "2"},
                                      {"parallel", "false"}})
                  .ok());
}

TEST(GenerationalStrategyTest, BitIdenticalToEngine) {
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 60;
  config.seed = 99;

  auto strategy =
      StrategyRegistry::Global().Create("generational").ValueOrDie();
  auto via_strategy =
      std::move(strategy->Run(fixture.evaluator.get(), config,
                              fixture.SeedPopulation(5), nullptr))
          .ValueOrDie();
  auto via_engine =
      std::move(core::EvolutionEngine(fixture.evaluator.get(), config)
                    .Run(fixture.SeedPopulation(5)))
          .ValueOrDie();
  ExpectIdenticalResults(via_strategy, via_engine);
}

TEST(SteadyStateStrategyTest, DeterministicAcross1And4Workers) {
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 30;
  config.seed = 42;

  auto strategy = StrategyRegistry::Global()
                      .Create("steady_state", {{"lambda", "6"}})
                      .ValueOrDie();
  auto serial = std::move(RunOnScheduler(1, *strategy, fixture, config,
                                         fixture.SeedPopulation(7)))
                    .ValueOrDie();
  auto parallel = std::move(RunOnScheduler(4, *strategy, fixture, config,
                                           fixture.SeedPopulation(7)))
                      .ValueOrDie();
  ExpectIdenticalResults(serial, parallel);
}

TEST(SteadyStateStrategyTest, DataPlaneShardCountsAreBitIdentical) {
  // A full GA run under the packed + sharded data plane at shard counts
  // {1, 3, 8} must match the legacy row-oriented plane bit-for-bit: same
  // history, same accepted offspring, same best individual. The run's
  // crossovers regularly exceed the measures' rebuild thresholds, so the
  // rebuild-sized path is covered too.
  core::GaConfig config;
  config.generations = 25;
  config.seed = 77;
  auto strategy = StrategyRegistry::Global()
                      .Create("steady_state", {{"lambda", "4"}})
                      .ValueOrDie();

  auto run_with = [&](const metrics::DataPlaneConfig& plane) {
    evocat::testing::DataPlaneGuard guard(plane);
    StrategyFixture fixture;  // evaluator + states bind under `plane`
    return std::move(strategy->Run(fixture.evaluator.get(), config,
                                   fixture.SeedPopulation(9), nullptr))
        .ValueOrDie();
  };

  auto baseline = run_with(metrics::DataPlaneConfig{});
  for (int shards : {1, 3, 8}) {
    metrics::DataPlaneConfig plane;
    plane.sharded = true;
    plane.packed = true;
    plane.shards = shards;
    auto result = run_with(plane);
    ExpectIdenticalResults(baseline, result);
  }
}

TEST(SteadyStateStrategyTest, StepInvariants) {
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 40;
  config.seed = 11;

  auto strategy = StrategyRegistry::Global()
                      .Create("steady_state", {{"lambda", "4"}})
                      .ValueOrDie();
  auto result = std::move(strategy->Run(fixture.evaluator.get(), config,
                                        fixture.SeedPopulation(3), nullptr))
                    .ValueOrDie();
  ASSERT_EQ(result.history.size(), 40u);
  double last = 1e100;
  for (const auto& record : result.history) {
    // Lambda offspring per mutation step, 2*lambda per crossover step.
    EXPECT_EQ(record.evaluations,
              record.op == core::OperatorKind::kMutation ? 4 : 8);
    // Replace-only-on-strict-improvement keeps the minimum non-increasing.
    EXPECT_LE(record.min_score, last + 1e-12);
    last = record.min_score;
  }
  EXPECT_EQ(result.stats.offspring_evaluated,
            result.stats.mutation_generations * 4 +
                result.stats.crossover_generations * 8);
}

TEST(SteadyStateStrategyTest, AgreesWithFullEvaluation) {
  // The concurrent delta path must match a full-recompute run: same plan,
  // same acceptances, scores within numerical tolerance.
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 25;
  config.seed = 17;

  auto strategy = StrategyRegistry::Global()
                      .Create("steady_state", {{"lambda", "3"}})
                      .ValueOrDie();
  config.incremental_eval = true;
  auto incremental =
      std::move(strategy->Run(fixture.evaluator.get(), config,
                              fixture.SeedPopulation(9), nullptr))
          .ValueOrDie();
  config.incremental_eval = false;
  auto full = std::move(strategy->Run(fixture.evaluator.get(), config,
                                      fixture.SeedPopulation(9), nullptr))
                  .ValueOrDie();
  ASSERT_EQ(incremental.history.size(), full.history.size());
  for (size_t i = 0; i < incremental.history.size(); ++i) {
    EXPECT_EQ(incremental.history[i].op, full.history[i].op);
    EXPECT_NEAR(incremental.history[i].min_score, full.history[i].min_score,
                1e-6);
    EXPECT_NEAR(incremental.history[i].mean_score, full.history[i].mean_score,
                1e-6);
  }
}

TEST(IslandsStrategyTest, DeterministicAcross1And4Workers) {
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 20;
  config.seed = 23;

  auto strategy = StrategyRegistry::Global()
                      .Create("islands", {{"islands", "4"},
                                          {"migration_interval", "5"}})
                      .ValueOrDie();
  auto serial = std::move(RunOnScheduler(1, *strategy, fixture, config,
                                         fixture.SeedPopulation(13)))
                    .ValueOrDie();
  auto parallel = std::move(RunOnScheduler(4, *strategy, fixture, config,
                                           fixture.SeedPopulation(13)))
                      .ValueOrDie();
  ExpectIdenticalResults(serial, parallel);
}

TEST(IslandsStrategyTest, ParallelFlagDoesNotChangeResults) {
  // parallel=false forces island-after-island execution on the calling
  // thread; results must match the concurrent schedule bit for bit.
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 20;
  config.seed = 29;

  auto concurrent = StrategyRegistry::Global()
                        .Create("islands", {{"islands", "3"},
                                            {"migration_interval", "4"},
                                            {"migrants", "2"}})
                        .ValueOrDie();
  auto sequential = StrategyRegistry::Global()
                        .Create("islands", {{"islands", "3"},
                                            {"migration_interval", "4"},
                                            {"migrants", "2"},
                                            {"parallel", "false"}})
                        .ValueOrDie();
  auto a = std::move(concurrent->Run(fixture.evaluator.get(), config,
                                     fixture.SeedPopulation(15), nullptr))
               .ValueOrDie();
  auto b = std::move(sequential->Run(fixture.evaluator.get(), config,
                                     fixture.SeedPopulation(15), nullptr))
               .ValueOrDie();
  ExpectIdenticalResults(a, b);
}

TEST(IslandsStrategyTest, HistoryCarriesEveryIslandsTrajectory) {
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 12;
  config.seed = 31;

  auto strategy = StrategyRegistry::Global()
                      .Create("islands", {{"islands", "4"},
                                          {"migration_interval", "6"}})
                      .ValueOrDie();
  auto seeds = fixture.SeedPopulation(17);
  double initial_count = static_cast<double>(seeds.size());
  auto result = std::move(strategy->Run(fixture.evaluator.get(), config,
                                        std::move(seeds), nullptr))
                    .ValueOrDie();

  // 4 islands x 12 generations, each island's records tagged and complete.
  ASSERT_EQ(result.history.size(), 48u);
  std::vector<int> per_island(4, 0);
  for (const auto& record : result.history) {
    ASSERT_GE(record.island, 0);
    ASSERT_LT(record.island, 4);
    ++per_island[static_cast<size_t>(record.island)];
  }
  EXPECT_EQ(per_island, (std::vector<int>{12, 12, 12, 12}));

  // The merged population preserves every member and is sorted.
  EXPECT_EQ(static_cast<double>(result.population.size()), initial_count);
  for (size_t i = 1; i < result.population.size(); ++i) {
    EXPECT_LE(result.population[i - 1].score(), result.population[i].score());
  }
  // Copy-based migration never loses the global best.
  double best_history = 1e100;
  for (const auto& record : result.history) {
    best_history = std::min(best_history, record.min_score);
  }
  EXPECT_DOUBLE_EQ(result.population.best().score(), best_history);
}

TEST(IslandsStrategyTest, GlobalStopModeHaltsAllIslandsTogether) {
  // stop_mode=global: no_improvement_window watches the cross-island best
  // at migration-epoch barriers — once it stalls for the window, every
  // island stops in the same epoch (per_island would leave healthy islands
  // running and stop stalled ones individually).
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 60;
  config.seed = 37;
  config.no_improvement_window = 2;

  auto global = StrategyRegistry::Global()
                    .Create("islands", {{"islands", "3"},
                                        {"migration_interval", "2"},
                                        {"stop_mode", "global"}})
                    .ValueOrDie();
  auto result = std::move(global->Run(fixture.evaluator.get(), config,
                                      fixture.SeedPopulation(23), nullptr))
                    .ValueOrDie();

  // Epoch-synchronized: every island contributed the same generation count,
  // a multiple of the migration interval.
  std::vector<int> per_island(3, 0);
  for (const auto& record : result.history) {
    ++per_island[static_cast<size_t>(record.island)];
  }
  EXPECT_EQ(per_island[0], per_island[1]);
  EXPECT_EQ(per_island[1], per_island[2]);
  EXPECT_EQ(per_island[0] % 2, 0);
  // The stop fired: with a 2-generation window over 60 generations this
  // deterministic run stalls long before the full budget.
  EXPECT_LT(result.history.size(), 3u * 60u);

  // A window-less run is untouched by the mode (no early stop to take).
  config.no_improvement_window = 0;
  auto full = std::move(global->Run(fixture.evaluator.get(), config,
                                    fixture.SeedPopulation(23), nullptr))
                  .ValueOrDie();
  EXPECT_EQ(full.history.size(), 3u * 60u);
}

TEST(IslandsStrategyTest, RejectsPopulationTooSmallForIslandCount) {
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 5;
  auto strategy = StrategyRegistry::Global()
                      .Create("islands", {{"islands", "16"}})
                      .ValueOrDie();
  auto seeds = fixture.SeedPopulation(19);
  seeds.resize(12);  // 16 islands need >= 32 members
  auto result = strategy->Run(fixture.evaluator.get(), config,
                              std::move(seeds), nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrategyTest, EveryStrategyHonorsPresetCancel) {
  StrategyFixture fixture;
  core::GaConfig config;
  config.generations = 50;
  std::atomic<bool> cancel{true};
  for (const std::string& name : StrategyRegistry::Global().Names()) {
    auto strategy = StrategyRegistry::Global().Create(name).ValueOrDie();
    auto result = strategy->Run(fixture.evaluator.get(), config,
                                fixture.SeedPopulation(21), &cancel);
    EXPECT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << name;
  }
}

TEST(StrategySessionTest, DefaultSpecMatchesExplicitGenerational) {
  // A spec without a strategy block must run exactly the pre-strategy
  // engine path; naming "generational" explicitly changes nothing.
  api::JobSpec spec;
  spec.source.kind = api::SourceSpec::Kind::kSynthetic;
  spec.source.has_inline_profile = true;
  spec.source.profile = datagen::UniformTestProfile("t", 150, {9, 7, 11});
  spec.ga.generations = 80;
  spec.seeds.master = 4242;

  api::Session session;
  auto implicit = std::move(session.Run(spec)).ValueOrDie();
  spec.strategy.name = "generational";
  auto explicit_run = std::move(session.Run(spec)).ValueOrDie();
  EXPECT_DOUBLE_EQ(implicit.best.fitness.score,
                   explicit_run.best.fitness.score);
  EXPECT_TRUE(implicit.best_data.SameCodes(explicit_run.best_data));
  ASSERT_EQ(implicit.history.size(), explicit_run.history.size());
}

TEST(StrategySessionTest, StrategySpecsRunEndToEnd) {
  api::JobSpec spec;
  spec.source.kind = api::SourceSpec::Kind::kSynthetic;
  spec.source.has_inline_profile = true;
  spec.source.profile = datagen::UniformTestProfile("t2", 120, {8, 6, 10});
  spec.ga.generations = 15;
  spec.seeds.master = 7;
  spec.outputs.history = true;

  api::Session session;
  spec.strategy.name = "steady_state";
  spec.strategy.params = {{"lambda", "4"}};
  auto steady = std::move(session.Run(spec)).ValueOrDie();
  EXPECT_EQ(steady.history.size(), 15u);
  EXPECT_EQ(steady.history.front().evaluations % 4, 0);

  spec.strategy.name = "islands";
  spec.strategy.params = {{"islands", "2"}, {"migration_interval", "5"}};
  auto islands = std::move(session.Run(spec)).ValueOrDie();
  EXPECT_EQ(islands.history.size(), 30u);  // 2 islands x 15 generations
  int tagged = 0;
  for (const auto& record : islands.history) tagged += record.island == 1;
  EXPECT_EQ(tagged, 15);
}

}  // namespace
}  // namespace evolve
}  // namespace evocat
