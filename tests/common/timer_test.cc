#include "common/timer.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(TimerTest, StartsAtZeroAndNeverRunsBackwards) {
  Timer timer;
  double previous = timer.ElapsedSeconds();
  EXPECT_GE(previous, 0.0);
  for (int i = 0; i < 1000; ++i) {
    double now = timer.ElapsedSeconds();
    EXPECT_GE(now, previous) << "monotonic clock went backwards at i=" << i;
    previous = now;
  }
}

TEST(TimerTest, ElapsedCoversASleepInterval) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  double elapsed = timer.ElapsedSeconds();
  // A sleep can overshoot arbitrarily under load but never undershoots, so
  // only the lower bound is exact; the upper bound is a loose sanity check.
  EXPECT_GE(elapsed, 0.049);
  EXPECT_LT(elapsed, 10.0);
}

TEST(TimerTest, ResetRestartsTheStopwatch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double before = timer.ElapsedSeconds();
  EXPECT_GE(before, 0.019);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before);
}

TEST(TimerTest, MillisMatchesSeconds) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  // Two reads of a running clock: millis was taken after seconds.
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_GE(millis, 9.9);
}

}  // namespace
}  // namespace evocat
