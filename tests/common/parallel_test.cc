#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(0, kN, [&](int64_t i) { visits[static_cast<size_t>(i)] += 1; });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, [&](int64_t) { calls += 1; });
  ParallelFor(5, 3, [&](int64_t) { calls += 1; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NonZeroBegin) {
  std::atomic<int64_t> sum{0};
  ParallelFor(10, 20, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(0, 5, [&](int64_t i) { order.push_back(static_cast<int>(i)); },
              /*num_threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));  // serial => in order
}

TEST(ParallelForTest, ResultsMatchSerialComputation) {
  constexpr int64_t kN = 512;
  std::vector<double> parallel_out(kN), serial_out(kN);
  auto f = [](int64_t i) {
    return static_cast<double>(i * i) / 3.0 + 1.0;
  };
  ParallelFor(0, kN, [&](int64_t i) { parallel_out[static_cast<size_t>(i)] = f(i); });
  for (int64_t i = 0; i < kN; ++i) serial_out[static_cast<size_t>(i)] = f(i);
  EXPECT_EQ(parallel_out, serial_out);
}

}  // namespace
}  // namespace evocat
