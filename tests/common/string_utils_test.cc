#include "common/string_utils.h"

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(SplitTest, Basics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(SplitCsvLineTest, PlainFields) {
  EXPECT_EQ(SplitCsvLine("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitCsvLineTest, QuotedFieldWithSeparator) {
  EXPECT_EQ(SplitCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(SplitCsvLineTest, EscapedQuotes) {
  EXPECT_EQ(SplitCsvLine("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(SplitCsvLineTest, EmptyFields) {
  EXPECT_EQ(SplitCsvLine(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(SplitCsvLineTest, AlternateSeparator) {
  EXPECT_EQ(SplitCsvLine("a;b", ';'), (std::vector<std::string>{"a", "b"}));
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ','), "a,b,c");
  EXPECT_EQ(Join({}, ','), "");
  EXPECT_EQ(Join({"x"}, ','), "x");
}

TEST(CsvEscapeTest, PlainPassesThrough) { EXPECT_EQ(CsvEscape("abc"), "abc"); }

TEST(CsvEscapeTest, SeparatorTriggersQuotes) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, RoundTripsThroughSplit) {
  std::string nasty = "a,\"b\",c\nend";
  auto fields = SplitCsvLine(CsvEscape(nasty));
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], nasty);
}

TEST(TrimTest, Basics) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \r\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("k=%d,f=%.2f", 5, 1.5), "k=5,f=1.50");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToLower(""), "");
}

}  // namespace
}  // namespace evocat
