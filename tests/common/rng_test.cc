#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.UniformInt(0, kBuckets - 1)] += 1;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.1 * kDraws / kBuckets);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(17);
  double min = 1.0, max = -1.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    min = std::min(min, v);
    max = std::max(max, v);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  EXPECT_LT(min, 0.05);
  EXPECT_GT(max, 0.95);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(31);
  constexpr int kDraws = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(37);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.1);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(41);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) counts[rng.WeightedIndex(weights)] += 1;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexSingleElement) {
  Rng rng(43);
  std::vector<double> weights = {2.5};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(47);
  constexpr int kDraws = 40000;
  int counts[4] = {0};
  for (int i = 0; i < kDraws; ++i) counts[rng.Zipf(4, 0.0)] += 1;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.25, 0.02);
  }
}

TEST(RngTest, ZipfSkewsTowardLowIndices) {
  Rng rng(53);
  constexpr int kDraws = 20000;
  std::vector<int> counts(6, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.Zipf(6, 1.2)] += 1;
  EXPECT_GT(counts[0], counts[5] * 3);
  // Monotone non-increasing in expectation; allow slack between neighbours.
  EXPECT_GT(counts[0], counts[2]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(67);
  auto sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t v : sample) EXPECT_LT(v, 20u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(71);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(73);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(79), b(79);
  Rng ca = a.Fork();
  Rng cb = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca.NextU64(), cb.NextU64());
}

}  // namespace
}  // namespace evocat
