#include "common/task_scheduler.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace evocat {
namespace {

TEST(TaskSchedulerTest, SubmitAndWaitRunsEveryTask) {
  TaskScheduler scheduler(3);
  std::atomic<int> runs{0};
  TaskScheduler::Group group;
  for (int i = 0; i < 32; ++i) {
    scheduler.Submit(&group, [&runs] { runs.fetch_add(1); });
  }
  scheduler.Wait(&group);
  EXPECT_EQ(runs.load(), 32);
}

TEST(TaskSchedulerTest, WaitOnEmptyGroupReturnsImmediately) {
  TaskScheduler scheduler(2);
  TaskScheduler::Group group;
  scheduler.Wait(&group);  // must not hang
}

TEST(TaskSchedulerTest, WorkerThreadIsDetected) {
  TaskScheduler scheduler(2);
  EXPECT_FALSE(TaskScheduler::OnWorkerThread());
  std::atomic<bool> on_worker{false};
  TaskScheduler::Group group;
  scheduler.Submit(&group, [&on_worker] {
    on_worker.store(TaskScheduler::OnWorkerThread() &&
                    TaskScheduler::Current() != nullptr);
  });
  scheduler.Wait(&group);
  EXPECT_TRUE(on_worker.load());
}

TEST(TaskSchedulerTest, ParallelForOnWorkerVisitsEveryIndexOnce) {
  TaskScheduler scheduler(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);
  TaskScheduler::Group group;
  scheduler.Submit(&group, [&] {
    scheduler.ParallelForOnWorker(0, kN, [&](int64_t i) {
      visits[static_cast<size_t>(i)].fetch_add(1);
    });
  });
  scheduler.Wait(&group);
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerTest, NestedParallelForCompletes) {
  TaskScheduler scheduler(4);
  constexpr int64_t kOuter = 16;
  constexpr int64_t kInner = 64;
  std::atomic<int64_t> total{0};
  TaskScheduler::Group group;
  scheduler.Submit(&group, [&] {
    scheduler.ParallelForOnWorker(0, kOuter, [&](int64_t) {
      scheduler.ParallelForOnWorker(0, kInner,
                                    [&](int64_t) { total.fetch_add(1); });
    });
  });
  scheduler.Wait(&group);
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(TaskSchedulerTest, PlainParallelForRoutesThroughWorkerScheduler) {
  // A ParallelFor issued from a worker thread must route to the worker's own
  // scheduler (not the shared one) and still cover the range exactly.
  TaskScheduler scheduler(3);
  constexpr int64_t kN = 257;
  std::vector<std::atomic<int>> visits(kN);
  for (auto& v : visits) v.store(0);
  TaskScheduler::Group group;
  scheduler.Submit(&group, [&] {
    ParallelFor(0, kN,
                [&](int64_t i) { visits[static_cast<size_t>(i)].fetch_add(1); });
  });
  scheduler.Wait(&group);
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(TaskSchedulerTest, SkewedLoadStealsWork) {
  // One task fans out a long loop while every other worker idles: with more
  // than one worker some chunks get stolen. Park the workers first (on a
  // single-core box the worker threads may not have run at all yet, and a
  // split is only attempted when idle workers exist), then yield inside the
  // loop body so thieves get CPU time even with one hardware thread.
  TaskScheduler scheduler(4);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  int64_t expected = 0;
  std::atomic<int64_t> total{0};
  for (int attempt = 0; attempt < 50 && scheduler.steal_count() == 0;
       ++attempt) {
    expected += 4096;
    TaskScheduler::Group group;
    scheduler.Submit(&group, [&] {
      scheduler.ParallelForOnWorker(0, 4096, [&](int64_t) {
        std::this_thread::yield();
        total.fetch_add(1);
      });
    });
    scheduler.Wait(&group);
  }
  EXPECT_EQ(total.load(), expected);
  EXPECT_GT(scheduler.steal_count(), 0);
}

TEST(TaskSchedulerTest, ManyGroupsInterleave) {
  TaskScheduler scheduler(3);
  std::atomic<int> a{0}, b{0};
  TaskScheduler::Group group_a, group_b;
  for (int i = 0; i < 10; ++i) {
    scheduler.Submit(&group_a, [&a] { a.fetch_add(1); });
    scheduler.Submit(&group_b, [&b] { b.fetch_add(1); });
  }
  scheduler.Wait(&group_a);
  EXPECT_EQ(a.load(), 10);
  scheduler.Wait(&group_b);
  EXPECT_EQ(b.load(), 10);
}

}  // namespace
}  // namespace evocat
