#include "common/math_utils.h"

#include <cmath>

#include <gtest/gtest.h>

namespace evocat {
namespace {

TEST(EntropyTest, UniformDistribution) {
  EXPECT_NEAR(Entropy({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
}

TEST(EntropyTest, DegenerateDistributionIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0, 0.0}), 0.0);
}

TEST(EntropyTest, UnnormalizedInputIsNormalized) {
  EXPECT_NEAR(Entropy({2.0, 2.0}), 1.0, 1e-12);
  EXPECT_NEAR(Entropy({10.0, 10.0, 10.0, 10.0}), 2.0, 1e-12);
}

TEST(EntropyTest, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
}

TEST(EntropyTest, KnownBiasedCoin) {
  double h = Entropy({0.9, 0.1});
  EXPECT_NEAR(h, -(0.9 * std::log2(0.9) + 0.1 * std::log2(0.1)), 1e-12);
}

TEST(EntropyTest, FromCountsMatchesProbabilities) {
  EXPECT_NEAR(EntropyFromCounts({30, 10}), Entropy({0.75, 0.25}), 1e-12);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(VarianceTest, Basics) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({2.0, 4.0}), 1.0);  // population variance
  EXPECT_NEAR(StdDev({2.0, 4.0}), 1.0, 1e-12);
}

TEST(MinMaxTest, Basics) {
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}), 3.0);
  EXPECT_TRUE(std::isinf(Min({})));
  EXPECT_TRUE(std::isinf(Max({})));
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.5);
}

TEST(PercentileTest, UnsortedInputHandled) {
  std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
}

TEST(PercentileTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0); }

TEST(ClampTest, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
}

TEST(XLogXTest, ZeroConvention) {
  EXPECT_DOUBLE_EQ(XLogX(0.0), 0.0);
  EXPECT_DOUBLE_EQ(XLogX(-1.0), 0.0);
  EXPECT_NEAR(XLogX(2.0), 2.0, 1e-12);  // 2*log2(2) = 2
}

TEST(NearlyEqualTest, Tolerance) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(NearlyEqual(1.0, 1.001));
  EXPECT_TRUE(NearlyEqual(1.0, 1.001, 0.01));
}

}  // namespace
}  // namespace evocat
