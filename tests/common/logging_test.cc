#include "common/logging.h"

#include <gtest/gtest.h>

namespace evocat {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, DefaultLevelIsInfoOrConfigured) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, SuppressedMessagesDoNotReachStderr) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(DEBUG) << "hidden debug";
  EVOCAT_LOG(INFO) << "hidden info";
  EVOCAT_LOG(WARNING) << "hidden warning";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(captured.empty()) << captured;
}

TEST_F(LoggingTest, EmittedMessageCarriesLevelFileAndText) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(WARNING) << "value=" << 42;
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("WARN"), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("value=42"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysEmitsAtErrorLevel) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(ERROR) << "boom";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("boom"), std::string::npos);
}

}  // namespace
}  // namespace evocat
