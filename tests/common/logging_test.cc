#include "common/logging.h"

#include <gtest/gtest.h>

namespace evocat {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, DefaultLevelIsInfoOrConfigured) {
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, SuppressedMessagesDoNotReachStderr) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(DEBUG) << "hidden debug";
  EVOCAT_LOG(INFO) << "hidden info";
  EVOCAT_LOG(WARNING) << "hidden warning";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(captured.empty()) << captured;
}

TEST_F(LoggingTest, EmittedMessageCarriesLevelFileAndText) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(WARNING) << "value=" << 42;
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("WARN"), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(captured.find("value=42"), std::string::npos);
}

TEST_F(LoggingTest, ErrorAlwaysEmitsAtErrorLevel) {
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(ERROR) << "boom";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("boom"), std::string::npos);
}

// Restores format as well as level.
class LoggingJsonTest : public LoggingTest {
 protected:
  void TearDown() override {
    SetLogFormat(LogFormat::kText);
    LoggingTest::TearDown();
  }
};

TEST_F(LoggingJsonTest, JsonModeEmitsOneObjectPerLine) {
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kJson);
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(WARNING) << "json \"quoted\" value=" << 7;
  std::string captured = ::testing::internal::GetCapturedStderr();
  // One line, one object.
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured.back(), '\n');
  EXPECT_EQ(captured.find('\n'), captured.size() - 1);
  EXPECT_EQ(captured.front(), '{');
  EXPECT_NE(captured.find("\"level\":\"WARN\""), std::string::npos) << captured;
  EXPECT_NE(captured.find("\"component\":\"logging_test.cc:"),
            std::string::npos)
      << captured;
  EXPECT_NE(captured.find("\"msg\":\"json \\\"quoted\\\" value=7\""),
            std::string::npos)
      << captured;
  // RFC3339 UTC timestamp.
  EXPECT_NE(captured.find("\"ts\":\""), std::string::npos) << captured;
  EXPECT_NE(captured.find("Z\""), std::string::npos) << captured;
  // No job scope active, so no job_id field.
  EXPECT_EQ(captured.find("job_id"), std::string::npos) << captured;
}

TEST_F(LoggingJsonTest, ScopedJobIdTagsAndRestores) {
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kJson);
  {
    ScopedLogJobId outer("job-000001");
    ::testing::internal::CaptureStderr();
    EVOCAT_LOG(INFO) << "outer";
    std::string captured = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(captured.find("\"job_id\":\"job-000001\""), std::string::npos)
        << captured;
    {
      ScopedLogJobId inner("job-000002");
      ::testing::internal::CaptureStderr();
      EVOCAT_LOG(INFO) << "inner";
      captured = ::testing::internal::GetCapturedStderr();
      EXPECT_NE(captured.find("\"job_id\":\"job-000002\""), std::string::npos)
          << captured;
    }
    // Nested scope ended: the outer id is back.
    ::testing::internal::CaptureStderr();
    EVOCAT_LOG(INFO) << "outer again";
    captured = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(captured.find("\"job_id\":\"job-000001\""), std::string::npos)
        << captured;
  }
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(INFO) << "no scope";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("job_id"), std::string::npos) << captured;
}

TEST_F(LoggingJsonTest, TextModeAnnotatesJobIdToo) {
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kText);
  ScopedLogJobId scope("job-000009");
  ::testing::internal::CaptureStderr();
  EVOCAT_LOG(INFO) << "working";
  std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("job-000009"), std::string::npos) << captured;
  EXPECT_NE(captured.find("working"), std::string::npos) << captured;
}

}  // namespace
}  // namespace evocat
