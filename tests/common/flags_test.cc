#include "common/flags.h"

#include <gtest/gtest.h>

namespace evocat {
namespace {

struct ParserFixture {
  std::string name = "default_name";
  int64_t count = 10;
  double ratio = 0.5;
  bool verbose = false;
  FlagParser parser{"tool", "test tool"};

  ParserFixture() {
    parser.AddString("name", "a name", &name);
    parser.AddInt("count", "a count", &count);
    parser.AddDouble("ratio", "a ratio", &ratio);
    parser.AddBool("verbose", "talk more", &verbose);
  }

  Status Parse(std::vector<const char*> args) {
    args.insert(args.begin(), "tool");
    return parser.Parse(static_cast<int>(args.size()), args.data());
  }
};

TEST(FlagParserTest, DefaultsSurviveEmptyParse) {
  ParserFixture fixture;
  ASSERT_TRUE(fixture.Parse({}).ok());
  EXPECT_EQ(fixture.name, "default_name");
  EXPECT_EQ(fixture.count, 10);
  EXPECT_DOUBLE_EQ(fixture.ratio, 0.5);
  EXPECT_FALSE(fixture.verbose);
}

TEST(FlagParserTest, EqualsSyntax) {
  ParserFixture fixture;
  ASSERT_TRUE(
      fixture.Parse({"--name=abc", "--count=42", "--ratio=0.25"}).ok());
  EXPECT_EQ(fixture.name, "abc");
  EXPECT_EQ(fixture.count, 42);
  EXPECT_DOUBLE_EQ(fixture.ratio, 0.25);
}

TEST(FlagParserTest, SpaceSyntax) {
  ParserFixture fixture;
  ASSERT_TRUE(fixture.Parse({"--name", "xyz", "--count", "-7"}).ok());
  EXPECT_EQ(fixture.name, "xyz");
  EXPECT_EQ(fixture.count, -7);
}

TEST(FlagParserTest, BareBooleanAndExplicit) {
  ParserFixture fixture;
  ASSERT_TRUE(fixture.Parse({"--verbose"}).ok());
  EXPECT_TRUE(fixture.verbose);

  ParserFixture fixture2;
  ASSERT_TRUE(fixture2.Parse({"--verbose=false"}).ok());
  EXPECT_FALSE(fixture2.verbose);

  ParserFixture fixture3;
  ASSERT_TRUE(fixture3.Parse({"--verbose=yes"}).ok());
  EXPECT_TRUE(fixture3.verbose);
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  ParserFixture fixture;
  ASSERT_TRUE(fixture.Parse({"one", "--count=1", "two"}).ok());
  EXPECT_EQ(fixture.parser.positional(),
            (std::vector<std::string>{"one", "two"}));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  ParserFixture fixture;
  Status status = fixture.Parse({"--nonexistent=3"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown flag"), std::string::npos);
}

TEST(FlagParserTest, BadValuesRejected) {
  ParserFixture fixture;
  EXPECT_FALSE(fixture.Parse({"--count=abc"}).ok());
  ParserFixture fixture2;
  EXPECT_FALSE(fixture2.Parse({"--ratio=1.2.3"}).ok());
  ParserFixture fixture3;
  EXPECT_FALSE(fixture3.Parse({"--verbose=maybe"}).ok());
}

TEST(FlagParserTest, MissingValueRejected) {
  ParserFixture fixture;
  Status status = fixture.Parse({"--name"});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("needs a value"), std::string::npos);
}

TEST(FlagParserTest, HelpShortCircuits) {
  ParserFixture fixture;
  ASSERT_TRUE(fixture.Parse({"--help"}).ok());
  EXPECT_TRUE(fixture.parser.help_requested());
  ParserFixture fixture2;
  ASSERT_TRUE(fixture2.Parse({"-h"}).ok());
  EXPECT_TRUE(fixture2.parser.help_requested());
}

TEST(FlagParserTest, UsageListsAllFlags) {
  ParserFixture fixture;
  std::string usage = fixture.parser.Usage();
  for (const char* expected :
       {"--name", "--count", "--ratio", "--verbose", "--help", "test tool"}) {
    EXPECT_NE(usage.find(expected), std::string::npos) << expected;
  }
}

TEST(FlagParserTest, NegativeNumbersViaEquals) {
  ParserFixture fixture;
  ASSERT_TRUE(fixture.Parse({"--ratio=-0.75"}).ok());
  EXPECT_DOUBLE_EQ(fixture.ratio, -0.75);
}

}  // namespace
}  // namespace evocat
