#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace evocat {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, MessageConcatenatesStreamableArgs) {
  Status status = Status::Invalid("row ", 42, " bad value ", 3.5);
  EXPECT_EQ(status.message(), "row 42 bad value 3.5");
  EXPECT_EQ(status.ToString(), "InvalidArgument: row 42 bad value 3.5");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::NotFound("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::Invalid("negative: ", x);
  return Status::OK();
}

Status PropagatesViaMacro(int x) {
  EVOCAT_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatesViaMacro(1).ok());
  Status status = PropagatesViaMacro(-2);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "negative: -2");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> result(Status::OK());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> result(5);
  EXPECT_EQ(result.ValueOr(-1), 5);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "payload");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::Invalid("odd: ", x);
  return x / 2;
}

Result<int> QuarterOf(int x) {
  EVOCAT_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 2);

  Result<int> err = QuarterOf(6);  // half = 3, then odd
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().message(), "odd: 3");
}

TEST(ResultTest, DereferenceOperators) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(*result, "abc");
  EXPECT_EQ(result->size(), 3u);
}

}  // namespace
}  // namespace evocat
