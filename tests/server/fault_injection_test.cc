/// Crash/fault-injection rig for evocatd: forks the real daemon binary
/// (path baked in as EVOCATD_BINARY by CMake), drives it over a Unix-domain
/// socket, SIGKILLs it mid-run, restarts it against the same WAL and asserts
/// the recovered jobs complete with artifacts identical to an uninterrupted
/// in-process run. Also boots the daemon against a corrupt WAL tail
/// (quarantine path) and exercises the auth and backpressure contracts
/// end-to-end through the real process.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/json.h"
#include "api/session.h"
#include "server/http.h"
#include "server/wal.h"

namespace evocat {
namespace server {
namespace {

std::string TinyJobJson(const std::string& name, long long generations) {
  return R"({
    "name": ")" + name + R"(",
    "source": {
      "kind": "synthetic",
      "profile": {
        "name": "tiny",
        "num_records": 60,
        "attributes": [
          {"name": "a0", "kind": "ordinal", "cardinality": 7},
          {"name": "a1", "kind": "nominal", "cardinality": 5},
          {"name": "a2", "kind": "nominal", "cardinality": 9}
        ],
        "protected_attributes": ["a0", "a1", "a2"]
      }
    },
    "methods": [
      {"name": "microaggregation", "grid": {"k": [3, 6]}},
      {"name": "pram", "grid": {"retain": [0.7, 0.4]}}
    ],
    "measures": {"prl_em_iterations": 10},
    "ga": {"generations": )" + std::to_string(generations) + R"(},
    "seeds": {"master": 404}
  })";
}

constexpr long long kForever = 50000000;

std::string UniquePath(const std::string& stem) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string path = ::testing::TempDir() + "/" + info->name() + "_" + stem;
  // TempDir survives across runs; a WAL (or socket/token file) left by a
  // previous execution would leak into this test. Scrub the path and the
  // WAL's sidecars.
  std::remove(path.c_str());
  std::remove((path + ".quarantine").c_str());
  std::remove((path + ".compact").c_str());
  return path;
}

/// The daemon process under test. SIGKILL via `Kill` simulates the crash;
/// the destructor reaps whatever is left so no test leaks a process.
class Daemon {
 public:
  explicit Daemon(std::vector<std::string> args) {
    pid_ = ::fork();
    if (pid_ == 0) {
      int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        ::dup2(devnull, STDERR_FILENO);
        ::close(devnull);
      }
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(EVOCATD_BINARY));
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(EVOCATD_BINARY, argv.data());
      ::_exit(127);
    }
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      Reap();
    }
  }

  void Kill() {  // the crash: no handlers run, nothing is flushed
    ::kill(pid_, SIGKILL);
    Reap();
  }

  void Terminate() {  // orderly shutdown (drains jobs)
    ::kill(pid_, SIGTERM);
    Reap();
  }

  bool alive() const { return pid_ > 0; }

 private:
  void Reap() {
    int wstatus = 0;
    ::waitpid(pid_, &wstatus, 0);
    pid_ = -1;
  }

  pid_t pid_ = -1;
};

HttpRequest Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

HttpRequest Post(const std::string& target, std::string body = "") {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.body = std::move(body);
  return request;
}

bool WaitForHealth(const std::string& socket_path, int seconds = 15) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    Result<HttpResponse> health = HttpFetchUnix(socket_path, Get("/healthz"));
    if (health.ok() && health.ValueOrDie().status == 200) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

api::JsonValue ParseBody(const HttpResponse& response) {
  auto parsed = api::JsonValue::Parse(response.body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                           << response.body;
  return parsed.ok() ? std::move(parsed).ValueOrDie()
                     : api::JsonValue::MakeObject();
}

std::string PollUntil(const std::string& socket_path, const std::string& id,
                      const std::string& state, int seconds = 120) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  std::string last = "?";
  while (std::chrono::steady_clock::now() < deadline) {
    auto response = HttpFetchUnix(socket_path, Get("/v1/jobs/" + id));
    if (response.ok()) {
      api::JsonValue json = ParseBody(response.ValueOrDie());
      if (const api::JsonValue* value = json.Find("state")) {
        last = value->string_value();
        if (last == state || last == "done" || last == "failed" ||
            last == "canceled") {
          return last;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return last;
}

TEST(FaultInjectionTest, SigkillMidRunThenRestartCompletesIdentically) {
  std::string socket_path = UniquePath("d.sock");
  std::string wal_path = UniquePath("jobs.wal");
  // One worker: the forever-blocker pins it, so the tiny job is guaranteed
  // to still be queued (unfinished in the WAL) when the crash hits.
  std::vector<std::string> args = {"--socket=" + socket_path,
                                   "--wal=" + wal_path, "--threads=1"};

  {
    Daemon daemon(args);
    ASSERT_TRUE(WaitForHealth(socket_path)) << "daemon never came up";

    HttpResponse blocker =
        HttpFetchUnix(socket_path,
                      Post("/v1/jobs", TinyJobJson("blocker", kForever)))
            .ValueOrDie();
    ASSERT_EQ(blocker.status, 202) << blocker.body;
    EXPECT_EQ(ParseBody(blocker).Find("id")->string_value(), "job-000001");

    HttpResponse tiny =
        HttpFetchUnix(socket_path,
                      Post("/v1/jobs", TinyJobJson("survivor", 12)))
            .ValueOrDie();
    ASSERT_EQ(tiny.status, 202) << tiny.body;
    EXPECT_EQ(ParseBody(tiny).Find("id")->string_value(), "job-000002");

    daemon.Kill();  // SIGKILL: both jobs unfinished, only the WAL survives
  }

  {
    Daemon daemon(args);
    ASSERT_TRUE(WaitForHealth(socket_path)) << "daemon did not restart";

    // The restarted daemon replayed both submits under their original ids.
    api::JsonValue health = ParseBody(
        HttpFetchUnix(socket_path, Get("/healthz")).ValueOrDie());
    const api::JsonValue* wal_stats = health.Find("wal");
    ASSERT_NE(wal_stats, nullptr) << "healthz has no wal section";
    EXPECT_EQ(wal_stats->Find("recovered_jobs")->int_value(), 2);
    EXPECT_EQ(wal_stats->Find("quarantined_bytes")->int_value(), 0);

    api::JsonValue survivor = ParseBody(
        HttpFetchUnix(socket_path, Get("/v1/jobs/job-000002")).ValueOrDie());
    ASSERT_NE(survivor.Find("recovered"), nullptr);
    EXPECT_TRUE(survivor.Find("recovered")->bool_value());

    // Unblock the worker: cancel the forever job, let the survivor finish.
    HttpResponse canceled =
        HttpFetchUnix(socket_path, Post("/v1/jobs/job-000001/cancel"))
            .ValueOrDie();
    EXPECT_EQ(canceled.status, 202) << canceled.body;
    ASSERT_EQ(PollUntil(socket_path, "job-000002", "done"), "done");

    HttpResponse result =
        HttpFetchUnix(socket_path, Get("/v1/jobs/job-000002/result"))
            .ValueOrDie();
    ASSERT_EQ(result.status, 200) << result.body;
    api::JsonValue artifacts = ParseBody(result);

    // Bit-identical to an uninterrupted run: specs embed their seeds, so
    // the crash costs wall-clock, never changes the answer.
    api::JobSpec spec =
        api::JobSpec::FromJsonText(TinyJobJson("survivor", 12)).ValueOrDie();
    api::Session oracle;
    api::RunArtifacts direct = oracle.Run(spec).ValueOrDie();
    EXPECT_EQ(artifacts.Find("final_scores")->Find("min")->number_value(),
              direct.final_scores.min);
    EXPECT_EQ(artifacts.Find("final_scores")->Find("max")->number_value(),
              direct.final_scores.max);
    EXPECT_EQ(artifacts.Find("best")->Find("origin")->string_value(),
              direct.best.origin);
    EXPECT_EQ(artifacts.Find("history")->size(), direct.history.size());

    daemon.Terminate();
  }

  // Third boot: both jobs reached durable terminal states, nothing re-runs.
  auto wal = Wal::Open(wal_path).ValueOrDie();
  EXPECT_TRUE(wal->TakeRecovered().empty());
}

TEST(FaultInjectionTest, BootsAndQuarantinesCorruptWalTail) {
  std::string socket_path = UniquePath("d.sock");
  std::string wal_path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(wal_path).ValueOrDie();
    api::JobSpec spec =
        api::JobSpec::FromJsonText(TinyJobJson("survivor", 8)).ValueOrDie();
    ASSERT_TRUE(wal->AppendSubmit("job-000001", spec).ok());
  }
  {
    // The torn tail of a submit whose payload never made it to disk.
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out << "R submit job-000002 - 4096 00000000\n{\"name\": \"lost";
  }

  Daemon daemon({"--socket=" + socket_path, "--wal=" + wal_path});
  ASSERT_TRUE(WaitForHealth(socket_path))
      << "daemon must boot despite the damaged WAL tail";

  api::JsonValue health =
      ParseBody(HttpFetchUnix(socket_path, Get("/healthz")).ValueOrDie());
  const api::JsonValue* wal_stats = health.Find("wal");
  ASSERT_NE(wal_stats, nullptr);
  EXPECT_GT(wal_stats->Find("quarantined_bytes")->int_value(), 0);
  EXPECT_EQ(wal_stats->Find("recovered_jobs")->int_value(), 1);

  // The bad suffix is preserved for forensics, not silently dropped.
  std::ifstream quarantine(wal_path + ".quarantine");
  EXPECT_TRUE(quarantine.good());

  // The job before the tear still completes.
  EXPECT_EQ(PollUntil(socket_path, "job-000001", "done"), "done");
  daemon.Terminate();
}

TEST(FaultInjectionTest, BearerTokenGuardsEverythingButHealth) {
  std::string socket_path = UniquePath("d.sock");
  std::string token_path = UniquePath("token");
  {
    std::ofstream out(token_path);
    out << "s3cret-t0ken\n";  // trailing newline must be trimmed
  }

  Daemon daemon(
      {"--socket=" + socket_path, "--auth-token-file=" + token_path});
  ASSERT_TRUE(WaitForHealth(socket_path));  // healthz needs no token

  HttpResponse anonymous =
      HttpFetchUnix(socket_path, Get("/v1/jobs")).ValueOrDie();
  EXPECT_EQ(anonymous.status, 401) << anonymous.body;
  ASSERT_NE(anonymous.FindHeader("WWW-Authenticate"), nullptr);

  HttpRequest wrong = Get("/v1/jobs");
  wrong.headers.emplace_back("Authorization", "Bearer s3cret-t0kex");
  EXPECT_EQ(HttpFetchUnix(socket_path, wrong).ValueOrDie().status, 401);

  HttpRequest right = Get("/v1/jobs");
  right.headers.emplace_back("Authorization", "Bearer s3cret-t0ken");
  EXPECT_EQ(HttpFetchUnix(socket_path, right).ValueOrDie().status, 200);

  daemon.Terminate();
}

TEST(FaultInjectionTest, SubmitBurstGets429WhileHealthStaysResponsive) {
  std::string socket_path = UniquePath("d.sock");
  Daemon daemon({"--socket=" + socket_path, "--threads=1",
                 "--max-pending-jobs=1"});
  ASSERT_TRUE(WaitForHealth(socket_path));

  ASSERT_EQ(HttpFetchUnix(socket_path,
                          Post("/v1/jobs", TinyJobJson("blocker", kForever)))
                .ValueOrDie()
                .status,
            202);
  ASSERT_EQ(PollUntil(socket_path, "job-000001", "running"), "running");
  ASSERT_EQ(HttpFetchUnix(socket_path,
                          Post("/v1/jobs", TinyJobJson("queued", kForever)))
                .ValueOrDie()
                .status,
            202);

  // The queue is full: the burst bounces with the backpressure contract.
  HttpResponse rejected =
      HttpFetchUnix(socket_path, Post("/v1/jobs", TinyJobJson("burst", 4)))
          .ValueOrDie();
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  const std::string* retry_after = rejected.FindHeader("Retry-After");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_FALSE(retry_after->empty());

  // An overloaded daemon still answers health — and says it is degraded.
  HttpResponse health =
      HttpFetchUnix(socket_path, Get("/healthz")).ValueOrDie();
  EXPECT_EQ(health.status, 200);
  api::JsonValue health_json = ParseBody(health);
  EXPECT_TRUE(health_json.Find("degraded")->bool_value());
  EXPECT_EQ(health_json.Find("status")->string_value(), "degraded");
  EXPECT_EQ(
      health_json.Find("queue")->Find("rejected_submits")->int_value(), 1);

  daemon.Terminate();
}

}  // namespace
}  // namespace server
}  // namespace evocat
