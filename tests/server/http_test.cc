#include "server/http.h"

#include <gtest/gtest.h>

namespace evocat {
namespace server {
namespace {

TEST(HttpParseTest, ParsesRequestLineHeadersAndBody) {
  std::string raw =
      "POST /v1/jobs?x=1&flag HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "content-length: 11\r\n"
      "Content-Type: application/json\r\n"
      "\r\n"
      "{\"a\": true}";
  HttpRequest request = ParseHttpRequest(raw).ValueOrDie();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/jobs?x=1&flag");
  EXPECT_EQ(request.Path(), "/v1/jobs");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.body, "{\"a\": true}");

  auto params = request.QueryParams();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].first, "x");
  EXPECT_EQ(params[0].second, "1");
  EXPECT_EQ(params[1].first, "flag");
  EXPECT_EQ(params[1].second, "");

  // Header lookup is case-insensitive (the client sent lowercase).
  ASSERT_NE(request.FindHeader("Content-Length"), nullptr);
  EXPECT_EQ(*request.FindHeader("CONTENT-TYPE"), "application/json");
  EXPECT_EQ(request.FindHeader("Accept"), nullptr);
}

TEST(HttpParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseHttpRequest("").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /\r\n\r\n").ok());          // no version
  EXPECT_FALSE(ParseHttpRequest("GET / SPDY/3\r\n\r\n").ok());   // bad proto
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/1.1\r\nbroken\r\n\r\n").ok());
  // Body shorter than announced.
  EXPECT_FALSE(
      ParseHttpRequest("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nhi").ok());
}

TEST(HttpParseTest, RejectsTransferEncoding) {
  Status status = ParseHttpRequest(
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                      .status();
  EXPECT_EQ(status.code(), StatusCode::kNotImplemented);
}

TEST(HttpSerializeTest, ResponseCarriesLengthAndConnectionClose) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\": {}}\n";
  std::string raw = SerializeHttpResponse(response);
  EXPECT_NE(raw.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(raw.find("\r\n\r\n{\"error\": {}}\n"), std::string::npos);
}

TEST(HttpSerializeTest, ResponseRoundTripsThroughClientParser) {
  HttpResponse response;
  response.status = 202;
  response.body = "{\"id\": \"job-000001\"}";
  HttpResponse parsed =
      ParseHttpResponse(SerializeHttpResponse(response)).ValueOrDie();
  EXPECT_EQ(parsed.status, 202);
  EXPECT_EQ(parsed.body, response.body);
  EXPECT_EQ(parsed.content_type, "application/json");
}

TEST(HttpSerializeTest, RequestRoundTripsThroughServerParser) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/jobs";
  request.body = "{\"name\": \"j\"}";
  HttpRequest parsed =
      ParseHttpRequest(SerializeHttpRequest(request)).ValueOrDie();
  EXPECT_EQ(parsed.method, "POST");
  EXPECT_EQ(parsed.target, "/v1/jobs");
  EXPECT_EQ(parsed.body, request.body);
}

}  // namespace
}  // namespace server
}  // namespace evocat
