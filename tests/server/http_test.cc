#include "server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace evocat {
namespace server {
namespace {

/// A connected socket pair: the test writes raw bytes into `client` and
/// reads them back through `ReadHttpRequest(server, ...)` — the server's
/// exact fd path, no real network needed.
struct SocketPair {
  int client = -1;
  int server = -1;

  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client = fds[0];
    server = fds[1];
  }
  ~SocketPair() {
    if (client >= 0) ::close(client);
    if (server >= 0) ::close(server);
  }

  void Send(const std::string& bytes) const {
    ASSERT_EQ(::send(client, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
};

TEST(HttpParseTest, ParsesRequestLineHeadersAndBody) {
  std::string raw =
      "POST /v1/jobs?x=1&flag HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "content-length: 11\r\n"
      "Content-Type: application/json\r\n"
      "\r\n"
      "{\"a\": true}";
  HttpRequest request = ParseHttpRequest(raw).ValueOrDie();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/jobs?x=1&flag");
  EXPECT_EQ(request.Path(), "/v1/jobs");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.body, "{\"a\": true}");

  auto params = request.QueryParams();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].first, "x");
  EXPECT_EQ(params[0].second, "1");
  EXPECT_EQ(params[1].first, "flag");
  EXPECT_EQ(params[1].second, "");

  // Header lookup is case-insensitive (the client sent lowercase).
  ASSERT_NE(request.FindHeader("Content-Length"), nullptr);
  EXPECT_EQ(*request.FindHeader("CONTENT-TYPE"), "application/json");
  EXPECT_EQ(request.FindHeader("Accept"), nullptr);
}

TEST(HttpParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseHttpRequest("").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /\r\n\r\n").ok());          // no version
  EXPECT_FALSE(ParseHttpRequest("GET / SPDY/3\r\n\r\n").ok());   // bad proto
  EXPECT_FALSE(ParseHttpRequest("GET / HTTP/1.1\r\nbroken\r\n\r\n").ok());
  // Body shorter than announced.
  EXPECT_FALSE(
      ParseHttpRequest("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nhi").ok());
}

TEST(HttpParseTest, RejectsTransferEncoding) {
  Status status = ParseHttpRequest(
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                      .status();
  EXPECT_EQ(status.code(), StatusCode::kNotImplemented);
}

TEST(HttpSerializeTest, ResponseCarriesLengthAndConnectionClose) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\": {}}\n";
  std::string raw = SerializeHttpResponse(response);
  EXPECT_NE(raw.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Content-Length: 14\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(raw.find("\r\n\r\n{\"error\": {}}\n"), std::string::npos);
}

TEST(HttpSerializeTest, ResponseRoundTripsThroughClientParser) {
  HttpResponse response;
  response.status = 202;
  response.body = "{\"id\": \"job-000001\"}";
  HttpResponse parsed =
      ParseHttpResponse(SerializeHttpResponse(response)).ValueOrDie();
  EXPECT_EQ(parsed.status, 202);
  EXPECT_EQ(parsed.body, response.body);
  EXPECT_EQ(parsed.content_type, "application/json");
}

TEST(HttpSerializeTest, RequestRoundTripsThroughServerParser) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/jobs";
  request.body = "{\"name\": \"j\"}";
  HttpRequest parsed =
      ParseHttpRequest(SerializeHttpRequest(request)).ValueOrDie();
  EXPECT_EQ(parsed.method, "POST");
  EXPECT_EQ(parsed.target, "/v1/jobs");
  EXPECT_EQ(parsed.body, request.body);
}

TEST(HttpReasonPhraseTest, CoversTheProtectionStatuses) {
  EXPECT_STREQ(HttpReasonPhrase(401), "Unauthorized");
  EXPECT_STREQ(HttpReasonPhrase(408), "Request Timeout");
  EXPECT_STREQ(HttpReasonPhrase(413), "Payload Too Large");
  EXPECT_STREQ(HttpReasonPhrase(429), "Too Many Requests");
  EXPECT_STREQ(HttpReasonPhrase(431), "Request Header Fields Too Large");
}

TEST(HttpKeepAliveTest, WantsKeepAliveFollowsVersionAndConnectionHeader) {
  HttpRequest request;
  request.version = "HTTP/1.1";
  EXPECT_TRUE(WantsKeepAlive(request));  // 1.1 default is persistent

  request.headers.emplace_back("Connection", "close");
  EXPECT_FALSE(WantsKeepAlive(request));

  request.headers.clear();
  request.headers.emplace_back("connection", "CLOSE");  // case-insensitive
  EXPECT_FALSE(WantsKeepAlive(request));

  request.headers.clear();
  request.version = "HTTP/1.0";  // 1.0 is one-shot
  EXPECT_FALSE(WantsKeepAlive(request));
}

TEST(HttpKeepAliveTest, SerializationCarriesTheConnectionHeader) {
  HttpResponse response;
  response.keep_alive = true;
  EXPECT_NE(SerializeHttpResponse(response).find("Connection: keep-alive\r\n"),
            std::string::npos);
  response.keep_alive = false;
  EXPECT_NE(SerializeHttpResponse(response).find("Connection: close\r\n"),
            std::string::npos);

  HttpRequest request;
  request.keep_alive = true;
  EXPECT_NE(SerializeHttpRequest(request).find("Connection: keep-alive\r\n"),
            std::string::npos);
}

TEST(HttpSerializeTest, CustomResponseHeadersAreEmittedAndParsedBack) {
  HttpResponse response;
  response.status = 429;
  response.headers.emplace_back("Retry-After", "2");
  // A custom entry must never override the synthesized framing headers.
  response.headers.emplace_back("Content-Length", "999999");

  std::string raw = SerializeHttpResponse(response);
  EXPECT_NE(raw.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_EQ(raw.find("Content-Length: 999999"), std::string::npos);

  HttpResponse parsed = ParseHttpResponse(raw).ValueOrDie();
  EXPECT_EQ(parsed.status, 429);
  ASSERT_NE(parsed.FindHeader("Retry-After"), nullptr);
  EXPECT_EQ(*parsed.FindHeader("Retry-After"), "2");
}

TEST(HttpReadLimitsTest, OversizedHeaderBlockAnswers431) {
  SocketPair pair;
  HttpReadLimits limits;
  limits.max_header_bytes = 128;
  pair.Send("GET / HTTP/1.1\r\nX-Padding: " + std::string(512, 'x') +
            "\r\n\r\n");

  int http_status = 0;
  Result<HttpRequest> request =
      ReadHttpRequest(pair.server, limits, &http_status);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(http_status, 431);
}

TEST(HttpReadLimitsTest, OversizedBodyAnswers413WithoutReadingIt) {
  SocketPair pair;
  HttpReadLimits limits;
  limits.max_body_bytes = 64;
  // The body itself never arrives: the Content-Length announcement alone
  // must trigger the rejection.
  pair.Send("POST /v1/jobs HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");

  int http_status = 0;
  Result<HttpRequest> request =
      ReadHttpRequest(pair.server, limits, &http_status);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(http_status, 413);
}

TEST(HttpReadLimitsTest, StalledHeaderAnswers408) {
  SocketPair pair;
  HttpReadLimits limits;
  limits.header_timeout_ms = 60;  // slow-loris guard, shortened for the test
  limits.idle_timeout_ms = 5000;
  pair.Send("GET /v1/jobs HTTP/1.1\r\nX-Slow");  // head starts, never ends

  int http_status = 0;
  Result<HttpRequest> request =
      ReadHttpRequest(pair.server, limits, &http_status);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(http_status, 408);
}

TEST(HttpReadLimitsTest, IdleConnectionTimesOutSilently) {
  SocketPair pair;
  HttpReadLimits limits;
  limits.idle_timeout_ms = 60;
  // No bytes at all: the keep-alive window expires — nothing to answer.
  int http_status = -1;
  Result<HttpRequest> request =
      ReadHttpRequest(pair.server, limits, &http_status);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(http_status, 0);
}

TEST(HttpReadLimitsTest, CompleteRequestStillParsesUnderLimits) {
  SocketPair pair;
  HttpReadLimits limits;
  pair.Send(
      "POST /v1/jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n");

  int http_status = -1;
  HttpRequest request =
      ReadHttpRequest(pair.server, limits, &http_status).ValueOrDie();
  EXPECT_EQ(http_status, 0);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"a\": 1}\n");
  EXPECT_TRUE(WantsKeepAlive(request));
}

TEST(HttpReadLimitsTest, MalformedHeadAnswers400) {
  SocketPair pair;
  int http_status = 0;
  pair.Send("NOT-HTTP\r\n\r\n");
  Result<HttpRequest> request =
      ReadHttpRequest(pair.server, HttpReadLimits(), &http_status);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(http_status, 400);
}

TEST(HttpRetryTest, GivesUpAfterMaxAttemptsOnConnectFailure) {
  HttpRetryOptions options;
  options.max_attempts = 2;
  options.base_backoff_ms = 1;
  // Port 1 on loopback: connection refused, every attempt.
  Result<HttpResponse> response =
      HttpFetchRetry("127.0.0.1", 1, HttpRequest{}, options);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace server
}  // namespace evocat
