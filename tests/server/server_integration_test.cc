#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/json.h"
#include "api/session.h"

namespace evocat {
namespace server {
namespace {

/// A synthetic job that finishes in well under a second.
std::string TinyJobJson(const std::string& name, int generations) {
  return R"({
    "name": ")" + name + R"(",
    "source": {
      "kind": "synthetic",
      "profile": {
        "name": "tiny",
        "num_records": 60,
        "attributes": [
          {"name": "a0", "kind": "ordinal", "cardinality": 7},
          {"name": "a1", "kind": "nominal", "cardinality": 5},
          {"name": "a2", "kind": "nominal", "cardinality": 9}
        ],
        "protected_attributes": ["a0", "a1", "a2"]
      }
    },
    "methods": [
      {"name": "microaggregation", "grid": {"k": [3, 6]}},
      {"name": "pram", "grid": {"retain": [0.7, 0.4]}}
    ],
    "measures": {"prl_em_iterations": 10},
    "ga": {"generations": )" + std::to_string(generations) + R"(},
    "seeds": {"master": 404}
  })";
}

/// Server + dependencies with the lifetime the destructors need.
struct TestDaemon {
  api::Session session;
  TaskScheduler scheduler{2};
  JobManager jobs;
  Server server;

  explicit TestDaemon(Server::Options options = {},
                      JobManager::Options job_options = {})
      : jobs(&session, &scheduler, job_options),
        server(&jobs, &session, [&options] {
          if (options.unix_socket.empty()) {
            options.host = "127.0.0.1";
            options.port = 0;  // ephemeral
          }
          return options;
        }()) {}
};

api::JsonValue ParseBody(const HttpResponse& response) {
  auto parsed = api::JsonValue::Parse(response.body);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n"
                           << response.body;
  return parsed.ok() ? std::move(parsed).ValueOrDie()
                     : api::JsonValue::MakeObject();
}

HttpRequest Get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  return request;
}

HttpRequest Post(const std::string& target, std::string body = "") {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.body = std::move(body);
  return request;
}

/// Polls the status endpoint until the job reaches `state` (or a deadline).
std::string PollUntil(int port, const std::string& id,
                      const std::string& state) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string last = "?";
  while (std::chrono::steady_clock::now() < deadline) {
    auto response = HttpFetch("127.0.0.1", port, Get("/v1/jobs/" + id));
    if (response.ok()) {
      api::JsonValue json = ParseBody(response.ValueOrDie());
      if (const api::JsonValue* value = json.Find("state")) {
        last = value->string_value();
        if (last == state) return last;
        // Terminal states other than the expected one: stop early.
        if (last == "done" || last == "failed" || last == "canceled") {
          return last;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return last;
}

TEST(ServerRoutingTest, UnknownRoutesAndMethods) {
  TestDaemon daemon;  // routing needs no Start()
  EXPECT_EQ(daemon.server.Handle(Get("/nope")).status, 404);
  EXPECT_EQ(daemon.server.Handle(Post("/healthz")).status, 405);
  EXPECT_EQ(daemon.server.Handle(Get("/v1/jobs/job-000009")).status, 404);
  EXPECT_EQ(daemon.server.Handle(Post("/v1/jobs/x/result")).status, 405);
  EXPECT_EQ(daemon.server.Handle(Get("/v1/jobs/x/cancel")).status, 405);
  EXPECT_EQ(daemon.server.Handle(Get("/v1/jobs/x/unknown")).status, 404);
}

TEST(ServerRoutingTest, SubmitValidationNamesFieldAndPosition) {
  TestDaemon daemon;
  // JSON syntax error: the façade's line/column diagnostics surface as-is.
  HttpResponse bad_syntax =
      daemon.server.Handle(Post("/v1/jobs", "{\"name\": }"));
  EXPECT_EQ(bad_syntax.status, 400);
  EXPECT_NE(bad_syntax.body.find("line 1"), std::string::npos)
      << bad_syntax.body;

  // Spec error: names the offending field.
  HttpResponse bad_field = daemon.server.Handle(
      Post("/v1/jobs", "{\"ga\": {\"mutation_rate\": 3.0}}"));
  EXPECT_EQ(bad_field.status, 400);
  EXPECT_NE(bad_field.body.find("ga.mutation_rate"), std::string::npos)
      << bad_field.body;
}

TEST(ServerIntegrationTest, SubmitPollFetchRoundTrip) {
  TestDaemon daemon;
  ASSERT_TRUE(daemon.server.Start().ok());
  int port = daemon.server.port();
  ASSERT_GT(port, 0);

  // Health first: the daemon is alive before any job.
  HttpResponse health =
      HttpFetch("127.0.0.1", port, Get("/healthz")).ValueOrDie();
  EXPECT_EQ(health.status, 200);
  api::JsonValue health_json = ParseBody(health);
  EXPECT_EQ(health_json.Find("status")->string_value(), "ok");
  EXPECT_EQ(health_json.Find("workers")->int_value(), 2);
  // Build version + job-depth counters: what a load balancer drains on.
  ASSERT_NE(health_json.Find("version"), nullptr);
  EXPECT_FALSE(health_json.Find("version")->string_value().empty());
  const api::JsonValue* health_jobs = health_json.Find("jobs");
  ASSERT_NE(health_jobs, nullptr);
  ASSERT_NE(health_jobs->Find("finished"), nullptr);
  EXPECT_EQ(health_jobs->Find("finished")->int_value(), 0);

  // Submit: 202 with an id and poll/result paths.
  HttpResponse submitted =
      HttpFetch("127.0.0.1", port,
                Post("/v1/jobs", TinyJobJson("round-trip", 12)))
          .ValueOrDie();
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  api::JsonValue submit_json = ParseBody(submitted);
  std::string id = submit_json.Find("id")->string_value();
  ASSERT_FALSE(id.empty());
  EXPECT_EQ(submit_json.Find("poll")->string_value(), "/v1/jobs/" + id);

  // Poll until done, then fetch the artifacts.
  EXPECT_EQ(PollUntil(port, id, "done"), "done");
  HttpResponse result =
      HttpFetch("127.0.0.1", port, Get("/v1/jobs/" + id + "/result"))
          .ValueOrDie();
  ASSERT_EQ(result.status, 200) << result.body;
  api::JsonValue artifacts = ParseBody(result);
  EXPECT_EQ(artifacts.Find("job_name")->string_value(), "round-trip");
  EXPECT_EQ(artifacts.Find("num_rows")->int_value(), 60);
  EXPECT_EQ(artifacts.Find("history")->size(), 12u);
  EXPECT_NE(artifacts.Find("best_csv"), nullptr);

  // The served artifacts match a direct in-process run of the same spec.
  api::JobSpec spec =
      api::JobSpec::FromJsonText(TinyJobJson("round-trip", 12)).ValueOrDie();
  api::Session local;
  api::RunArtifacts direct = local.Run(spec).ValueOrDie();
  EXPECT_DOUBLE_EQ(
      artifacts.Find("final_scores")->Find("min")->number_value(),
      direct.final_scores.min);
  EXPECT_EQ(artifacts.Find("best")->Find("origin")->string_value(),
            direct.best.origin);

  // ?best_csv=0 prunes the inline CSV.
  HttpResponse slim =
      HttpFetch("127.0.0.1", port,
                Get("/v1/jobs/" + id + "/result?best_csv=0"))
          .ValueOrDie();
  EXPECT_EQ(ParseBody(slim).Find("best_csv"), nullptr);

  // The job list mentions the finished job.
  HttpResponse list = HttpFetch("127.0.0.1", port, Get("/v1/jobs")).ValueOrDie();
  EXPECT_EQ(list.status, 200);
  EXPECT_EQ(ParseBody(list).Find("jobs")->size(), 1u);

  // The lifetime finished counter advanced with the terminal transition.
  HttpResponse health_after =
      HttpFetch("127.0.0.1", port, Get("/healthz")).ValueOrDie();
  EXPECT_EQ(
      ParseBody(health_after).Find("jobs")->Find("finished")->int_value(), 1);

  daemon.server.Stop();
}

TEST(ServerIntegrationTest, CancelStopsALongJob) {
  TestDaemon daemon;
  ASSERT_TRUE(daemon.server.Start().ok());
  int port = daemon.server.port();

  // A job that would run for a long time (huge generation budget).
  HttpResponse submitted =
      HttpFetch("127.0.0.1", port,
                Post("/v1/jobs", TinyJobJson("long-haul", 50000000)))
          .ValueOrDie();
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  std::string id = ParseBody(submitted).Find("id")->string_value();

  // Fetching the result of an unfinished job is a 409.
  HttpResponse early =
      HttpFetch("127.0.0.1", port, Get("/v1/jobs/" + id + "/result"))
          .ValueOrDie();
  EXPECT_EQ(early.status, 409) << early.body;

  HttpResponse canceled =
      HttpFetch("127.0.0.1", port, Post("/v1/jobs/" + id + "/cancel"))
          .ValueOrDie();
  EXPECT_EQ(canceled.status, 202) << canceled.body;

  EXPECT_EQ(PollUntil(port, id, "canceled"), "canceled");
  HttpResponse result =
      HttpFetch("127.0.0.1", port, Get("/v1/jobs/" + id + "/result"))
          .ValueOrDie();
  EXPECT_EQ(result.status, 409);
  EXPECT_NE(result.body.find("Cancelled"), std::string::npos) << result.body;

  // Canceling a finished job is rejected.
  HttpResponse again =
      HttpFetch("127.0.0.1", port, Post("/v1/jobs/" + id + "/cancel"))
          .ValueOrDie();
  EXPECT_EQ(again.status, 400) << again.body;

  daemon.server.Stop();
}

TEST(ServerIntegrationTest, ServesOverUnixSocket) {
  Server::Options options;
  options.unix_socket = ::testing::TempDir() + "/evocatd_test.sock";
  TestDaemon daemon(options);
  ASSERT_TRUE(daemon.server.Start().ok());

  HttpResponse health =
      HttpFetchUnix(options.unix_socket, Get("/healthz")).ValueOrDie();
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(ParseBody(health).Find("status")->string_value(), "ok");

  HttpResponse submitted =
      HttpFetchUnix(options.unix_socket,
                    Post("/v1/jobs", TinyJobJson("via-unix", 5)))
          .ValueOrDie();
  EXPECT_EQ(submitted.status, 202) << submitted.body;

  daemon.server.Stop();
}

TEST(ServerIntegrationTest, KeepAliveConnectionCarriesManyRequests) {
  TestDaemon daemon;
  ASSERT_TRUE(daemon.server.Start().ok());
  int port = daemon.server.port();

  HttpConnection connection =
      HttpConnection::ConnectTcp("127.0.0.1", port).ValueOrDie();

  // Several round trips over the one TCP connection: submit, then poll and
  // fetch without reconnecting.
  HttpResponse health = connection.RoundTrip(Get("/healthz")).ValueOrDie();
  EXPECT_EQ(health.status, 200);
  EXPECT_TRUE(health.keep_alive);
  ASSERT_TRUE(connection.connected());

  HttpResponse submitted =
      connection.RoundTrip(Post("/v1/jobs", TinyJobJson("persistent", 6)))
          .ValueOrDie();
  ASSERT_EQ(submitted.status, 202) << submitted.body;
  std::string id = ParseBody(submitted).Find("id")->string_value();
  ASSERT_TRUE(connection.connected());

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::string state = "?";
  while (std::chrono::steady_clock::now() < deadline && state != "done") {
    HttpResponse polled =
        connection.RoundTrip(Get("/v1/jobs/" + id)).ValueOrDie();
    state = ParseBody(polled).Find("state")->string_value();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(state, "done");

  HttpResponse result =
      connection.RoundTrip(Get("/v1/jobs/" + id + "/result?best_csv=0"))
          .ValueOrDie();
  EXPECT_EQ(result.status, 200) << result.body;
  EXPECT_TRUE(connection.connected());

  daemon.server.Stop();
}

TEST(ServerIntegrationTest, FullQueueAnswers429WithRetryAfter) {
  Server::Options options;
  options.retry_after_seconds = 7;
  JobManager::Options job_options;
  job_options.max_pending_jobs = 1;
  TestDaemon daemon(options, job_options);  // routing only, no sockets

  // Pin both workers (waiting for each pin to leave the queue, so the
  // 1-slot queue never bounces a pin), then fill the single queue slot.
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    HttpResponse admitted = daemon.server.Handle(
        Post("/v1/jobs", TinyJobJson("pin-" + std::to_string(i), 50000000)));
    ASSERT_EQ(admitted.status, 202) << admitted.body;
    ids.push_back(ParseBody(admitted).Find("id")->string_value());
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline &&
           daemon.jobs.counts().running < std::min(i + 1, 2)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(daemon.jobs.counts().running, 2);
  ASSERT_EQ(daemon.jobs.admission().pending, 1);

  HttpResponse rejected = daemon.server.Handle(
      Post("/v1/jobs", TinyJobJson("bounced", 4)));
  EXPECT_EQ(rejected.status, 429) << rejected.body;
  ASSERT_NE(rejected.FindHeader("Retry-After"), nullptr);
  EXPECT_EQ(*rejected.FindHeader("Retry-After"), "7");
  EXPECT_NE(rejected.body.find("ResourceExhausted"), std::string::npos)
      << rejected.body;

  // /healthz reflects the saturation: degraded, queue counters populated.
  api::JsonValue health = ParseBody(daemon.server.Handle(Get("/healthz")));
  EXPECT_EQ(health.Find("status")->string_value(), "degraded");
  EXPECT_TRUE(health.Find("degraded")->bool_value());
  const api::JsonValue* queue = health.Find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->Find("pending")->int_value(), 1);
  EXPECT_EQ(queue->Find("capacity")->int_value(), 1);
  EXPECT_EQ(queue->Find("rejected_submits")->int_value(), 1);

  for (const std::string& id : ids) {
    EXPECT_EQ(daemon.server.Handle(Post("/v1/jobs/" + id + "/cancel")).status,
              202);
  }
}

TEST(ServerIntegrationTest, BearerAuthProtectsEveryRouteButHealth) {
  Server::Options options;
  options.auth_token = "sesame";
  TestDaemon daemon(options);

  // Probes stay unauthenticated.
  EXPECT_EQ(daemon.server.Handle(Get("/healthz")).status, 200);

  HttpResponse anonymous = daemon.server.Handle(Get("/v1/jobs"));
  EXPECT_EQ(anonymous.status, 401);
  ASSERT_NE(anonymous.FindHeader("WWW-Authenticate"), nullptr);

  HttpRequest wrong_scheme = Get("/v1/jobs");
  wrong_scheme.headers.emplace_back("Authorization", "Basic sesame");
  EXPECT_EQ(daemon.server.Handle(wrong_scheme).status, 401);

  HttpRequest wrong_token = Get("/v1/jobs");
  wrong_token.headers.emplace_back("Authorization", "Bearer sesamee");
  EXPECT_EQ(daemon.server.Handle(wrong_token).status, 401);

  HttpRequest authorized = Get("/v1/jobs");
  authorized.headers.emplace_back("Authorization", "Bearer sesame");
  EXPECT_EQ(daemon.server.Handle(authorized).status, 200);
}

}  // namespace
}  // namespace server
}  // namespace evocat
