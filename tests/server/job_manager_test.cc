#include "server/job_manager.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "server/wal.h"

namespace evocat {
namespace server {
namespace {

std::string TinyJobJson(const std::string& name, long long generations) {
  return R"({
    "name": ")" + name + R"(",
    "source": {
      "kind": "synthetic",
      "profile": {
        "name": "tiny",
        "num_records": 60,
        "attributes": [
          {"name": "a0", "kind": "ordinal", "cardinality": 7},
          {"name": "a1", "kind": "nominal", "cardinality": 5},
          {"name": "a2", "kind": "nominal", "cardinality": 9}
        ],
        "protected_attributes": ["a0", "a1", "a2"]
      }
    },
    "methods": [
      {"name": "microaggregation", "grid": {"k": [3, 6]}},
      {"name": "pram", "grid": {"retain": [0.7, 0.4]}}
    ],
    "measures": {"prl_em_iterations": 10},
    "ga": {"generations": )" + std::to_string(generations) + R"(},
    "seeds": {"master": 404}
  })";
}

api::JobSpec TinySpec(const std::string& name, long long generations) {
  return api::JobSpec::FromJsonText(TinyJobJson(name, generations))
      .ValueOrDie();
}

/// A generation budget no test will ever wait out — such a job runs until
/// canceled.
constexpr long long kForever = 50000000;

bool WaitUntil(const std::function<bool()>& predicate, int seconds = 60) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

bool WaitForState(const JobManager& jobs, const std::string& id,
                  JobState state) {
  return WaitUntil([&] {
    Result<JobManager::JobSnapshot> snapshot = jobs.GetStatus(id);
    return snapshot.ok() && snapshot.ValueOrDie().state == state;
  });
}

std::string UniquePath(const std::string& stem) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string path = ::testing::TempDir() + "/" + info->name() + "_" + stem;
  // TempDir survives across runs; a WAL left by a previous execution would
  // replay into this test. Scrub the path and its sidecars.
  std::remove(path.c_str());
  std::remove((path + ".quarantine").c_str());
  std::remove((path + ".compact").c_str());
  return path;
}

TEST(JobManagerAdmissionTest, BoundedQueueRejectsWithResourceExhausted) {
  api::Session session;
  TaskScheduler scheduler(1);  // one worker: the blocker pins it
  JobManager::Options options;
  options.max_pending_jobs = 2;
  JobManager jobs(&session, &scheduler, options);

  std::string blocker =
      jobs.Submit(TinySpec("blocker", kForever)).ValueOrDie();
  ASSERT_TRUE(WaitForState(jobs, blocker, JobState::kRunning));

  std::string first = jobs.Submit(TinySpec("queued-1", 4)).ValueOrDie();
  std::string second = jobs.Submit(TinySpec("queued-2", 4)).ValueOrDie();

  // The queue is at capacity: the next submit bounces, nothing is admitted.
  Result<std::string> third = jobs.Submit(TinySpec("rejected", 4));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);

  JobManager::Admission admission = jobs.admission();
  EXPECT_EQ(admission.pending, 2);
  EXPECT_EQ(admission.pending_capacity, 2);
  EXPECT_EQ(admission.rejected_submits, 1);
  EXPECT_TRUE(admission.degraded);

  // Canceling a queued job frees its admission slot immediately.
  ASSERT_TRUE(jobs.Cancel(first).ok());
  EXPECT_FALSE(jobs.admission().degraded);
  EXPECT_TRUE(jobs.Submit(TinySpec("admitted-now", 4)).ok());

  ASSERT_TRUE(jobs.Cancel(blocker).ok());
  ASSERT_TRUE(WaitForState(jobs, blocker, JobState::kCanceled));
  ASSERT_TRUE(WaitForState(jobs, second, JobState::kDone));
}

TEST(JobManagerAdmissionTest, CancelStormOnQueuedJobsNeverRunsAny) {
  api::Session session;
  TaskScheduler scheduler(1);
  JobManager jobs(&session, &scheduler);

  std::string blocker =
      jobs.Submit(TinySpec("blocker", kForever)).ValueOrDie();
  ASSERT_TRUE(WaitForState(jobs, blocker, JobState::kRunning));

  // A storm of queued jobs behind the blocker...
  std::vector<std::string> queued;
  for (int i = 0; i < 16; ++i) {
    queued.push_back(
        jobs.Submit(TinySpec("storm-" + std::to_string(i), kForever))
            .ValueOrDie());
  }
  // ...all canceled while still queued. The regression this guards: a
  // canceled-but-queued job used to stay "queued" until a worker dequeued
  // it, so cancellation only "happened" after the whole backlog drained.
  for (const std::string& id : queued) {
    ASSERT_TRUE(jobs.Cancel(id).ok());
    JobManager::JobSnapshot snapshot = jobs.GetStatus(id).ValueOrDie();
    EXPECT_EQ(snapshot.state, JobState::kCanceled)
        << id << " still " << JobStateToString(snapshot.state)
        << " right after Cancel returned";
  }

  ASSERT_TRUE(jobs.Cancel(blocker).ok());
  ASSERT_TRUE(WaitForState(jobs, blocker, JobState::kCanceled));

  // None of the canceled jobs ever transitioned through running.
  for (const std::string& id : queued) {
    JobManager::JobSnapshot snapshot = jobs.GetStatus(id).ValueOrDie();
    EXPECT_EQ(snapshot.state, JobState::kCanceled);
    EXPECT_EQ(snapshot.run_seconds, 0.0) << id << " was executed";
  }
  JobManager::Counts counts = jobs.counts();
  EXPECT_EQ(counts.canceled, 17);
  EXPECT_EQ(counts.finished, 17);
}

TEST(JobManagerRetentionTest, EvictsOldestFinishedBeyondJobCap) {
  api::Session session;
  TaskScheduler scheduler(2);
  JobManager::Options options;
  options.max_finished_jobs = 2;
  JobManager jobs(&session, &scheduler, options);

  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(
        jobs.Submit(TinySpec("retained-" + std::to_string(i), 4)).ValueOrDie());
    ASSERT_TRUE(WaitForState(jobs, ids.back(), JobState::kDone));
  }

  // Oldest finished evicted first; the two newest remain fetchable.
  EXPECT_EQ(jobs.GetStatus(ids[0]).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(jobs.GetResult(ids[1]).ok());
  EXPECT_TRUE(jobs.GetResult(ids[2]).ok());
  JobManager::Counts counts = jobs.counts();
  EXPECT_EQ(counts.done, 2);
  EXPECT_EQ(counts.finished, 3);  // lifetime counter ignores eviction
}

TEST(JobManagerRetentionTest, ByteBudgetEvictsButKeepsNewestResult) {
  api::Session session;
  TaskScheduler scheduler(2);
  JobManager::Options options;
  options.max_retained_bytes = 1;  // any finished artifact exceeds this
  JobManager jobs(&session, &scheduler, options);

  std::string first = jobs.Submit(TinySpec("first", 4)).ValueOrDie();
  ASSERT_TRUE(WaitForState(jobs, first, JobState::kDone));
  // Over budget, but the sole finished job is never evicted: its submitter
  // still gets to fetch it.
  EXPECT_TRUE(jobs.GetResult(first).ok());
  JobManager::Admission admission = jobs.admission();
  EXPECT_GT(admission.retained_bytes, 1);
  EXPECT_TRUE(admission.degraded);

  std::string second = jobs.Submit(TinySpec("second", 4)).ValueOrDie();
  ASSERT_TRUE(WaitForState(jobs, second, JobState::kDone));
  EXPECT_EQ(jobs.GetStatus(first).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(jobs.GetResult(second).ok());
}

TEST(JobManagerConcurrencyTest, SubmitCancelPollUnderLoadKeepsCountsSane) {
  api::Session session;
  TaskScheduler scheduler(2);
  JobManager jobs(&session, &scheduler);

  constexpr int kSubmitters = 3;
  constexpr int kJobsEach = 6;
  std::mutex ids_mutex;
  std::vector<std::string> ids;

  std::atomic<bool> polling{true};
  std::thread poller([&] {
    // Hammer the read paths while submits/cancels mutate the table — the
    // TSan CI job turns any locking slip here into a failure.
    while (polling.load()) {
      (void)jobs.List();
      (void)jobs.counts();
      (void)jobs.admission();
      std::vector<std::string> snapshot;
      {
        std::lock_guard<std::mutex> lock(ids_mutex);
        snapshot = ids;
      }
      for (const std::string& id : snapshot) (void)jobs.GetStatus(id);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kJobsEach; ++i) {
        std::string name =
            "load-" + std::to_string(t) + "-" + std::to_string(i);
        Result<std::string> id = jobs.Submit(TinySpec(name, 3));
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        std::lock_guard<std::mutex> lock(ids_mutex);
        ids.push_back(std::move(id).ValueOrDie());
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();

  // Cancel every other job; finished ones reject the cancel, which is fine.
  {
    std::lock_guard<std::mutex> lock(ids_mutex);
    for (size_t i = 0; i < ids.size(); i += 2) (void)jobs.Cancel(ids[i]);
  }

  constexpr int kTotal = kSubmitters * kJobsEach;
  ASSERT_TRUE(WaitUntil([&] { return jobs.counts().finished == kTotal; }))
      << "finished=" << jobs.counts().finished;
  polling.store(false);
  poller.join();

  JobManager::Counts counts = jobs.counts();
  EXPECT_EQ(counts.queued, 0);
  EXPECT_EQ(counts.running, 0);
  EXPECT_EQ(counts.failed, 0);
  EXPECT_EQ(counts.done + counts.canceled, kTotal);
  EXPECT_EQ(jobs.admission().pending, 0);
  EXPECT_EQ(jobs.List().size(), static_cast<size_t>(kTotal));
}

TEST(JobManagerWalTest, RecoveredJobRunsToBitIdenticalArtifacts) {
  std::string path = UniquePath("jobs.wal");
  api::JobSpec spec = TinySpec("recovered", 12);

  // A submit that never saw a terminal record — the crashed daemon's WAL.
  {
    auto wal = Wal::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->AppendSubmit("job-000001", spec).ok());
  }

  auto wal = Wal::Open(path).ValueOrDie();
  {
    api::Session session;
    TaskScheduler scheduler(2);
    JobManager::Options options;
    options.wal = wal.get();
    JobManager jobs(&session, &scheduler, options);

    // Recovered under its original id, flagged as such, and new ids resume
    // past the replayed sequence.
    JobManager::JobSnapshot snapshot = jobs.GetStatus("job-000001").ValueOrDie();
    EXPECT_TRUE(snapshot.recovered);
    EXPECT_EQ(jobs.Submit(TinySpec("fresh", 4)).ValueOrDie(), "job-000002");

    ASSERT_TRUE(WaitForState(jobs, "job-000001", JobState::kDone));
    ASSERT_TRUE(WaitForState(jobs, "job-000002", JobState::kDone));
    std::shared_ptr<const api::RunArtifacts> recovered =
        jobs.GetResult("job-000001").ValueOrDie();

    // Specs embed their seeds, so the re-run reproduces the interrupted
    // run's artifacts exactly.
    api::Session oracle;
    api::RunArtifacts direct = oracle.Run(spec).ValueOrDie();
    EXPECT_EQ(recovered->final_scores.min, direct.final_scores.min);
    EXPECT_EQ(recovered->final_scores.mean, direct.final_scores.mean);
    EXPECT_EQ(recovered->final_scores.max, direct.final_scores.max);
    EXPECT_EQ(recovered->best.origin, direct.best.origin);
    EXPECT_EQ(recovered->history.size(), direct.history.size());
  }

  // Both jobs reached terminal records: a third boot recovers nothing.
  wal.reset();
  auto reopened = Wal::Open(path).ValueOrDie();
  EXPECT_TRUE(reopened->TakeRecovered().empty());
}

TEST(JobManagerWalTest, ShutdownCancelLeavesJobsLiveForNextBoot) {
  std::string path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(path).ValueOrDie();
    api::Session session;
    TaskScheduler scheduler(1);
    JobManager::Options options;
    options.wal = wal.get();
    JobManager jobs(&session, &scheduler, options);
    std::string running =
        jobs.Submit(TinySpec("interrupted", kForever)).ValueOrDie();
    ASSERT_TRUE(WaitForState(jobs, running, JobState::kRunning));
    std::string queued =
        jobs.Submit(TinySpec("never-started", 4)).ValueOrDie();
    (void)queued;
    // Destructors: shutdown cancels both, but writes no terminal records.
  }

  auto wal = Wal::Open(path).ValueOrDie();
  std::vector<Wal::RecoveredJob> recovered = wal->TakeRecovered();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].spec.name, "interrupted");
  EXPECT_EQ(recovered[1].spec.name, "never-started");
}

TEST(JobManagerWalTest, UserCancelIsDurable) {
  std::string path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(path).ValueOrDie();
    api::Session session;
    TaskScheduler scheduler(1);
    JobManager::Options options;
    options.wal = wal.get();
    JobManager jobs(&session, &scheduler, options);
    std::string blocker =
        jobs.Submit(TinySpec("blocker", kForever)).ValueOrDie();
    ASSERT_TRUE(WaitForState(jobs, blocker, JobState::kRunning));
    std::string canceled = jobs.Submit(TinySpec("user-canceled", 4)).ValueOrDie();
    ASSERT_TRUE(jobs.Cancel(canceled).ok());  // explicit: logged as terminal
    ASSERT_TRUE(jobs.Cancel(blocker).ok());
    ASSERT_TRUE(WaitForState(jobs, blocker, JobState::kCanceled));
  }

  // Both cancels happened before shutdown, so both were durably retired:
  // unlike a shutdown-drain cancel, a user cancel must not come back.
  auto wal = Wal::Open(path).ValueOrDie();
  EXPECT_TRUE(wal->TakeRecovered().empty());
}

}  // namespace
}  // namespace server
}  // namespace evocat
