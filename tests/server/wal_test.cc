#include "server/wal.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "api/jobspec.h"

namespace evocat {
namespace server {
namespace {

std::string TinySpecJson(const std::string& name) {
  return R"({
    "name": ")" + name + R"(",
    "source": {
      "kind": "synthetic",
      "profile": {
        "name": "tiny",
        "num_records": 40,
        "attributes": [
          {"name": "a0", "kind": "ordinal", "cardinality": 5},
          {"name": "a1", "kind": "nominal", "cardinality": 4}
        ],
        "protected_attributes": ["a0", "a1"]
      }
    },
    "methods": [{"name": "pram", "grid": {"retain": [0.7]}}],
    "measures": {"prl_em_iterations": 5},
    "ga": {"generations": 4},
    "seeds": {"master": 11}
  })";
}

api::JobSpec TinySpec(const std::string& name) {
  return api::JobSpec::FromJsonText(TinySpecJson(name)).ValueOrDie();
}

std::string UniquePath(const std::string& stem) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string path = ::testing::TempDir() + "/" + info->name() + "_" + stem;
  // TempDir survives across runs; a WAL left by a previous execution would
  // replay into this test. Scrub the path and its sidecars.
  std::remove(path.c_str());
  std::remove((path + ".quarantine").c_str());
  std::remove((path + ".compact").c_str());
  return path;
}

std::string FileContents(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void AppendRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

size_t FileSize(const std::string& path) { return FileContents(path).size(); }

/// Same CRC-32 the WAL uses (IEEE 802.3, reflected) — the tests below craft
/// records with valid framing but unparseable payloads.
uint32_t TestCrc32(const std::string& data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string CraftRecord(const std::string& type, const std::string& id,
                        const std::string& state, const std::string& payload) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x",
                TestCrc32(type + ' ' + id + ' ' + state + ' ' + payload));
  return "R " + type + ' ' + id + ' ' + state + ' ' +
         std::to_string(payload.size()) + ' ' + crc + '\n' + payload + '\n';
}

TEST(WalTest, RecoversUnfinishedSubmitsInLogOrder) {
  std::string path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->AppendSubmit("job-000001", TinySpec("first")).ok());
    ASSERT_TRUE(wal->AppendSubmit("job-000002", TinySpec("second")).ok());
    EXPECT_TRUE(wal->TakeRecovered().empty());  // fresh log: nothing replayed
  }

  auto wal = Wal::Open(path).ValueOrDie();
  std::vector<Wal::RecoveredJob> recovered = wal->TakeRecovered();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].id, "job-000001");
  EXPECT_EQ(recovered[0].spec.name, "first");
  EXPECT_EQ(recovered[1].id, "job-000002");
  EXPECT_EQ(recovered[1].spec.name, "second");
  // The id sequence resumes past the replayed ids.
  EXPECT_EQ(wal->next_sequence(), 3u);

  Wal::Stats stats = wal->stats();
  EXPECT_EQ(stats.replayed_records, 2);
  EXPECT_EQ(stats.recovered_jobs, 2);
  EXPECT_EQ(stats.quarantined_bytes, 0);

  // TakeRecovered is one-shot.
  EXPECT_TRUE(wal->TakeRecovered().empty());
}

TEST(WalTest, TerminalRecordRetiresItsJob) {
  std::string path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->AppendSubmit("job-000001", TinySpec("done-job")).ok());
    ASSERT_TRUE(wal->AppendSubmit("job-000002", TinySpec("crashed-job")).ok());
    ASSERT_TRUE(wal->AppendTerminal("job-000001", "done").ok());
  }

  auto wal = Wal::Open(path).ValueOrDie();
  std::vector<Wal::RecoveredJob> recovered = wal->TakeRecovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].id, "job-000002");
  EXPECT_EQ(recovered[0].spec.name, "crashed-job");
  EXPECT_EQ(wal->next_sequence(), 3u);
}

TEST(WalTest, QuarantinesTruncatedTail) {
  std::string path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->AppendSubmit("job-000001", TinySpec("survivor")).ok());
  }
  // A torn write: the header of a record whose payload never hit the disk.
  std::string torn = "R submit job-000002 - 5000 deadbeef\n{\"par";
  AppendRaw(path, torn);

  auto wal = Wal::Open(path).ValueOrDie();
  Wal::Stats stats = wal->stats();
  EXPECT_EQ(stats.quarantined_bytes, static_cast<int64_t>(torn.size()));
  EXPECT_EQ(stats.quarantine_path, path + ".quarantine");
  EXPECT_EQ(FileContents(path + ".quarantine"), torn);

  // Everything before the tear boots normally...
  std::vector<Wal::RecoveredJob> recovered = wal->TakeRecovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].id, "job-000001");

  // ...and the truncated log accepts appends again.
  ASSERT_TRUE(wal->AppendSubmit("job-000003", TinySpec("after-repair")).ok());
  auto reopened = Wal::Open(path).ValueOrDie();
  EXPECT_EQ(reopened->TakeRecovered().size(), 2u);
  EXPECT_EQ(reopened->stats().quarantined_bytes, 0);
}

TEST(WalTest, QuarantinesCorruptRecord) {
  std::string path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->AppendSubmit("job-000001", TinySpec("clean")).ok());
    ASSERT_TRUE(wal->AppendSubmit("job-000002", TinySpec("rotted")).ok());
  }
  // Flip one payload byte inside the second record: framing still parses,
  // the CRC does not.
  std::string raw = FileContents(path);
  size_t flip = raw.rfind("rotted");
  ASSERT_NE(flip, std::string::npos);
  raw[flip] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << raw;
  }

  auto wal = Wal::Open(path).ValueOrDie();
  EXPECT_GT(wal->stats().quarantined_bytes, 0);
  std::vector<Wal::RecoveredJob> recovered = wal->TakeRecovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].id, "job-000001");
}

TEST(WalTest, SkipsSubmitsWhoseSpecNoLongerParses) {
  std::string path = UniquePath("jobs.wal");
  { auto wal = Wal::Open(path).ValueOrDie(); }  // header only

  // A record with valid framing and CRC whose payload fails JobSpec
  // validation (schema drift across versions), followed by a good one.
  AppendRaw(path, CraftRecord("submit", "job-000001", "-",
                              R"({"ga": {"mutation_rate": 3.0}})"));
  AppendRaw(path, CraftRecord("submit", "job-000002", "-",
                              TinySpecJson("still-good")));

  auto wal = Wal::Open(path).ValueOrDie();
  Wal::Stats stats = wal->stats();
  EXPECT_EQ(stats.replayed_records, 2);
  EXPECT_EQ(stats.invalid_specs, 1);
  EXPECT_EQ(stats.quarantined_bytes, 0);  // not damage, just undecodable
  std::vector<Wal::RecoveredJob> recovered = wal->TakeRecovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].id, "job-000002");
  EXPECT_EQ(wal->next_sequence(), 3u);
}

TEST(WalTest, CompactionDropsRetiredRecords) {
  std::string path = UniquePath("jobs.wal");
  Wal::Options options;
  options.sync = false;          // speed: no durability needed in-test
  options.compact_min_bytes = 1;  // compact as soon as retired records dominate

  auto wal = Wal::Open(path, options).ValueOrDie();
  // One job that stays live through every compaction...
  ASSERT_TRUE(wal->AppendSubmit("job-000001", TinySpec("long-lived")).ok());
  // ...and a churn of jobs that complete immediately.
  for (int i = 2; i <= 20; ++i) {
    char id[16];
    std::snprintf(id, sizeof(id), "job-%06d", i);
    ASSERT_TRUE(wal->AppendSubmit(id, TinySpec("churn")).ok());
    ASSERT_TRUE(wal->AppendTerminal(id, "done").ok());
  }
  EXPECT_GT(wal->stats().compactions, 0);

  // The compacted file holds exactly the live submit.
  size_t compacted_size = FileSize(path);
  std::string one_submit_log = UniquePath("one.wal");
  {
    Wal::Options plain;
    plain.sync = false;
    auto reference = Wal::Open(one_submit_log, plain).ValueOrDie();
    ASSERT_TRUE(
        reference->AppendSubmit("job-000001", TinySpec("long-lived")).ok());
  }
  EXPECT_EQ(compacted_size, FileSize(one_submit_log));

  auto reopened = Wal::Open(path).ValueOrDie();
  std::vector<Wal::RecoveredJob> recovered = reopened->TakeRecovered();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].id, "job-000001");
  EXPECT_EQ(recovered[0].spec.name, "long-lived");
  EXPECT_EQ(reopened->next_sequence(), 2u);  // terminal ids were compacted away
}

TEST(WalTest, NextSequenceIgnoresNonNumericIds) {
  std::string path = UniquePath("jobs.wal");
  {
    auto wal = Wal::Open(path).ValueOrDie();
    ASSERT_TRUE(wal->AppendSubmit("imported-batch", TinySpec("opaque")).ok());
    ASSERT_TRUE(wal->AppendSubmit("job-000041", TinySpec("numbered")).ok());
  }
  auto wal = Wal::Open(path).ValueOrDie();
  EXPECT_EQ(wal->next_sequence(), 42u);
  EXPECT_EQ(wal->TakeRecovered().size(), 2u);
}

}  // namespace
}  // namespace server
}  // namespace evocat
