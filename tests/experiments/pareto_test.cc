#include "experiments/pareto.h"

#include <gtest/gtest.h>

namespace evocat {
namespace experiments {
namespace {

IndividualSummary P(double il, double dr) {
  IndividualSummary summary;
  summary.origin = "p";
  summary.il = il;
  summary.dr = dr;
  summary.score = (il + dr) / 2.0;
  return summary;
}

TEST(DominatesTest, StrictAndNonStrictCases) {
  EXPECT_TRUE(Dominates(P(10, 10), P(20, 20)));
  EXPECT_TRUE(Dominates(P(10, 20), P(10, 30)));   // equal IL, better DR
  EXPECT_TRUE(Dominates(P(10, 30), P(20, 30)));   // better IL, equal DR
  EXPECT_FALSE(Dominates(P(10, 10), P(10, 10)));  // equal: no domination
  EXPECT_FALSE(Dominates(P(10, 30), P(30, 10)));  // trade-off: incomparable
  EXPECT_FALSE(Dominates(P(20, 20), P(10, 10)));
}

TEST(ParetoFrontTest, ExtractsNonDominatedSortedByIl) {
  std::vector<IndividualSummary> members = {
      P(30, 10), P(10, 30), P(20, 20), P(25, 25), P(40, 40)};
  auto front = ParetoFrontIndices(members);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(members[front[0]].il, 10);  // (10,30)
  EXPECT_DOUBLE_EQ(members[front[1]].il, 20);  // (20,20)
  EXPECT_DOUBLE_EQ(members[front[2]].il, 30);  // (30,10)
}

TEST(ParetoFrontTest, SinglePointAndEmpty) {
  EXPECT_TRUE(ParetoFrontIndices({}).empty());
  auto front = ParetoFrontIndices({P(5, 5)});
  EXPECT_EQ(front.size(), 1u);
}

TEST(ParetoFrontTest, DuplicatesCollapse) {
  std::vector<IndividualSummary> members = {P(10, 10), P(10, 10), P(5, 20)};
  auto front = ParetoFrontIndices(members);
  EXPECT_EQ(front.size(), 2u);  // one copy of (10,10) plus (5,20)
}

TEST(HypervolumeTest, SinglePointRectangle) {
  // Point (50, 50) vs reference (100, 100): rectangle 50x50 of 100x100.
  EXPECT_DOUBLE_EQ(DominatedHypervolume({P(50, 50)}), 0.25);
}

TEST(HypervolumeTest, OriginDominatesEverything) {
  EXPECT_DOUBLE_EQ(DominatedHypervolume({P(0, 0)}), 1.0);
}

TEST(HypervolumeTest, PointsBeyondReferenceContributeNothing) {
  EXPECT_DOUBLE_EQ(DominatedHypervolume({P(100, 50)}), 0.0);
  EXPECT_DOUBLE_EQ(DominatedHypervolume({P(120, 10)}), 0.0);
  EXPECT_DOUBLE_EQ(DominatedHypervolume({}), 0.0);
}

TEST(HypervolumeTest, TwoPointStaircase) {
  // (20, 60) and (60, 20) vs (100, 100):
  // sweep: (20,60): (100-20)*(100-60) = 3200; (60,20): (100-60)*(60-20) =
  // 1600 -> total 4800 / 10000.
  EXPECT_DOUBLE_EQ(DominatedHypervolume({P(20, 60), P(60, 20)}), 0.48);
}

TEST(HypervolumeTest, DominatedPointAddsNothing) {
  double front_only = DominatedHypervolume({P(20, 60), P(60, 20)});
  double with_dominated =
      DominatedHypervolume({P(20, 60), P(60, 20), P(70, 70)});
  EXPECT_DOUBLE_EQ(front_only, with_dominated);
}

TEST(HypervolumeTest, MonotoneUnderImprovement) {
  // Moving a front point toward the origin can only grow the hypervolume.
  double before = DominatedHypervolume({P(40, 40), P(20, 70)});
  double after = DominatedHypervolume({P(30, 35), P(20, 70)});
  EXPECT_GT(after, before);
}

TEST(AnalyzeParetoTest, AggregatesConsistently) {
  std::vector<IndividualSummary> members = {P(30, 10), P(10, 30), P(20, 20),
                                            P(25, 25), P(40, 40)};
  auto stats = AnalyzePareto(members);
  EXPECT_EQ(stats.front.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.dominated_fraction, 2.0 / 5.0);
  EXPECT_GT(stats.hypervolume, 0.0);
  EXPECT_LT(stats.hypervolume, 1.0);
  // Front is sorted ascending in IL and descending in DR.
  for (size_t i = 1; i < stats.front.size(); ++i) {
    EXPECT_LT(stats.front[i - 1].il, stats.front[i].il);
    EXPECT_GT(stats.front[i - 1].dr, stats.front[i].dr);
  }
}

TEST(AnalyzeParetoTest, AllOnFront) {
  auto stats = AnalyzePareto({P(10, 30), P(20, 20), P(30, 10)});
  EXPECT_EQ(stats.front.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.dominated_fraction, 0.0);
}

}  // namespace
}  // namespace experiments
}  // namespace evocat
