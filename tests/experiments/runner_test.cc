#include "experiments/runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "experiments/report.h"

namespace evocat {
namespace experiments {
namespace {

// A trimmed experiment configuration that runs in well under a second.
ExperimentOptions FastOptions(metrics::ScoreAggregation aggregation) {
  ExperimentOptions options;
  options.aggregation = aggregation;
  options.generations = 15;
  options.ga_seed = 5;
  return options;
}

// A trimmed dataset case (small file, small population) for unit testing;
// full paper cases are exercised by the bench binaries.
DatasetCase TinyCase() {
  DatasetCase dataset_case;
  dataset_case.profile = datagen::UniformTestProfile("tiny", 80, {7, 5, 9});
  dataset_case.profile.attributes[0].kind = AttrKind::kOrdinal;
  for (auto& attr : dataset_case.profile.attributes) {
    attr.latent_weight = 0.4;
    attr.zipf_s = 0.5;
  }
  protection::PopulationSpec spec;
  spec.microagg_ks = {3, 6};
  spec.microagg_orderings = {protection::MicroOrdering::kUnivariate,
                             protection::MicroOrdering::kSortByAttr0};
  spec.bottom_fractions = {0.2};
  spec.top_fractions = {0.2};
  spec.recoding_group_sizes = {2};
  spec.rankswap_percents = {5, 15};
  spec.pram_retains = {0.7, 0.4};
  dataset_case.population_spec = spec;
  return dataset_case;
}

TEST(CaseRegistryTest, AllPaperCasesResolve) {
  for (const char* name : {"housing", "german", "flare", "adult"}) {
    auto dataset_case = CaseByName(name).ValueOrDie();
    EXPECT_EQ(dataset_case.profile.name, name);
    EXPECT_EQ(dataset_case.profile.protected_attributes.size(), 3u);
  }
  EXPECT_FALSE(CaseByName("nonexistent").ok());
  EXPECT_EQ(AllCases().size(), 4u);
}

TEST(CaseRegistryTest, PopulationSizesMatchPaper) {
  EXPECT_EQ(HousingCase().population_spec.TotalCount(), 110);
  EXPECT_EQ(GermanCase().population_spec.TotalCount(), 104);
  EXPECT_EQ(FlareCase().population_spec.TotalCount(), 104);
  EXPECT_EQ(AdultCase().population_spec.TotalCount(), 86);
}

TEST(RunnerTest, EndToEndProducesConsistentResult) {
  auto result =
      RunExperiment(TinyCase(), FastOptions(metrics::ScoreAggregation::kMean))
          .ValueOrDie();
  EXPECT_EQ(result.dataset, "tiny");
  EXPECT_EQ(result.initial.size(), 11u);  // trimmed spec: 4+1+1+1+2+2
  EXPECT_EQ(result.final_population.size(), result.initial.size());
  EXPECT_EQ(result.history.size(), 15u);

  // Scores sorted / sane.
  EXPECT_LE(result.initial_scores.min, result.initial_scores.mean);
  EXPECT_LE(result.initial_scores.mean, result.initial_scores.max);
  // GA never worsens min/mean under elitist replacement.
  EXPECT_LE(result.final_scores.min, result.initial_scores.min + 1e-9);
  EXPECT_LE(result.final_scores.mean, result.initial_scores.mean + 1e-9);
}

TEST(RunnerTest, TinySpecCountsAreExpected) {
  // 2 ks x 2 orderings + 1 bottom + 1 top + 1 recode + 2 swap + 2 pram = 11.
  EXPECT_EQ(TinyCase().population_spec.TotalCount(), 11);
}

TEST(RunnerTest, RemoveBestFractionShrinksPopulation) {
  auto options = FastOptions(metrics::ScoreAggregation::kMax);
  options.remove_best_fraction = 0.2;  // 20% of 11 -> 2 removed
  auto full = RunExperiment(TinyCase(), FastOptions(metrics::ScoreAggregation::kMax))
                  .ValueOrDie();
  auto reduced = RunExperiment(TinyCase(), options).ValueOrDie();
  EXPECT_EQ(reduced.initial.size(), full.initial.size() - 2);
  // The removed individuals were the best: the reduced initial min is the
  // full population's 3rd-best initial score or worse.
  EXPECT_GE(reduced.initial_scores.min, full.initial_scores.min - 1e-9);
}

TEST(RunnerTest, RejectsBadRemoveFraction) {
  auto options = FastOptions(metrics::ScoreAggregation::kMax);
  options.remove_best_fraction = 1.0;
  EXPECT_FALSE(RunExperiment(TinyCase(), options).ok());
  options.remove_best_fraction = -0.1;
  EXPECT_FALSE(RunExperiment(TinyCase(), options).ok());
}

TEST(RunnerTest, DeterministicGivenSeeds) {
  auto options = FastOptions(metrics::ScoreAggregation::kMean);
  options.fitness.prl_em_iterations = 20;
  auto a = RunExperiment(TinyCase(), options).ValueOrDie();
  auto b = RunExperiment(TinyCase(), options).ValueOrDie();
  ASSERT_EQ(a.history.size(), b.history.size());
  EXPECT_DOUBLE_EQ(a.final_scores.min, b.final_scores.min);
  EXPECT_DOUBLE_EQ(a.final_scores.mean, b.final_scores.mean);
  EXPECT_DOUBLE_EQ(a.final_scores.max, b.final_scores.max);
}

TEST(RunnerTest, AggregationReachesBreakdown) {
  auto mean_run =
      RunExperiment(TinyCase(), FastOptions(metrics::ScoreAggregation::kMean))
          .ValueOrDie();
  for (const auto& member : mean_run.initial) {
    EXPECT_NEAR(member.score, (member.il + member.dr) / 2.0, 1e-9);
  }
  auto max_run =
      RunExperiment(TinyCase(), FastOptions(metrics::ScoreAggregation::kMax))
          .ValueOrDie();
  for (const auto& member : max_run.initial) {
    EXPECT_NEAR(member.score, std::max(member.il, member.dr), 1e-9);
  }
}

TEST(ImprovementTest, PercentFormula) {
  EXPECT_DOUBLE_EQ(ExperimentResult::ImprovementPercent(40.0, 30.0), 25.0);
  EXPECT_DOUBLE_EQ(ExperimentResult::ImprovementPercent(40.0, 50.0), -25.0);
  // Undefined for non-positive start scores: NaN, never a silent 0%.
  EXPECT_TRUE(std::isnan(ExperimentResult::ImprovementPercent(0.0, 10.0)));
  EXPECT_TRUE(std::isnan(ExperimentResult::ImprovementPercent(-5.0, 10.0)));
}

TEST(ReportTest, DispersionCsvShape) {
  auto result =
      RunExperiment(TinyCase(), FastOptions(metrics::ScoreAggregation::kMean))
          .ValueOrDie();
  std::ostringstream out;
  PrintDispersionCsv(result, out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "series,phase,index,il,dr,score,origin");
  int initial_rows = 0, final_rows = 0;
  while (std::getline(in, line)) {
    if (line.rfind("dispersion,initial,", 0) == 0) ++initial_rows;
    if (line.rfind("dispersion,final,", 0) == 0) ++final_rows;
  }
  EXPECT_EQ(initial_rows, 11);
  EXPECT_EQ(final_rows, 11);
}

TEST(ReportTest, EvolutionCsvShape) {
  auto result =
      RunExperiment(TinyCase(), FastOptions(metrics::ScoreAggregation::kMean))
          .ValueOrDie();
  std::ostringstream out;
  PrintEvolutionCsv(result, out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "series,generation,min_score,mean_score,max_score,operator");
  int rows = 0;
  while (std::getline(in, line)) {
    if (line.rfind("evolution,", 0) == 0) ++rows;
  }
  EXPECT_EQ(rows, 16);  // generation 0 (initial) + 15 generations
}

TEST(ReportTest, SummariesMentionKeyNumbers) {
  auto result =
      RunExperiment(TinyCase(), FastOptions(metrics::ScoreAggregation::kMax))
          .ValueOrDie();
  std::ostringstream out;
  PrintImprovementSummary(result, out);
  std::string text = out.str();
  EXPECT_NE(text.find("max "), std::string::npos);
  EXPECT_NE(text.find("mean"), std::string::npos);
  EXPECT_NE(text.find("min "), std::string::npos);
  EXPECT_NE(text.find("improvement"), std::string::npos);

  std::ostringstream timing;
  PrintTimingSummary(result, timing);
  EXPECT_NE(timing.str().find("timing,mutation,"), std::string::npos);
  EXPECT_NE(timing.str().find("timing,crossover,"), std::string::npos);
}

TEST(ReportTest, MeanImbalance) {
  std::vector<IndividualSummary> members;
  members.push_back({"a", 10.0, 30.0, 20.0});
  members.push_back({"b", 25.0, 25.0, 25.0});
  EXPECT_DOUBLE_EQ(MeanImbalance(members), 10.0);
  EXPECT_DOUBLE_EQ(MeanImbalance({}), 0.0);
}

}  // namespace
}  // namespace experiments
}  // namespace evocat
