#include "experiments/svg_plot.h"

#include <fstream>

#include <gtest/gtest.h>

namespace evocat {
namespace experiments {
namespace {

ExperimentResult FakeResult() {
  ExperimentResult result;
  result.dataset = "fake";
  result.initial = {{"seed_a", 10.0, 60.0, 35.0}, {"seed_b", 40.0, 20.0, 30.0}};
  result.final_population = {{"child", 22.0, 24.0, 24.0},
                             {"seed_b", 40.0, 20.0, 30.0}};
  result.initial_scores = {30.0, 32.5, 35.0};
  result.final_scores = {24.0, 27.0, 30.0};
  for (int g = 1; g <= 5; ++g) {
    core::GenerationRecord record;
    record.generation = g;
    record.min_score = 30.0 - g;
    record.mean_score = 32.0 - g;
    record.max_score = 35.0 - g;
    result.history.push_back(record);
  }
  return result;
}

TEST(SvgPlotTest, DispersionContainsAllPoints) {
  auto svg = RenderDispersionSvg(FakeResult(), "Dispersion");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 2 hollow initial circles + 2 filled final circles + 2 legend markers.
  size_t circles = 0;
  for (size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 6u);
  EXPECT_NE(svg.find("Dispersion"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);  // diagonal
}

TEST(SvgPlotTest, EvolutionHasThreeSeries) {
  auto svg = RenderEvolutionSvg(FakeResult(), "Evolution");
  size_t polylines = 0;
  for (size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 3u);  // min / mean / max
  for (const char* label : {">min<", ">mean<", ">max<"}) {
    EXPECT_NE(svg.find(label), std::string::npos) << label;
  }
}

TEST(SvgPlotTest, EvolutionHandlesEmptyHistory) {
  ExperimentResult result = FakeResult();
  result.history.clear();
  auto svg = RenderEvolutionSvg(result, "Empty");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlotTest, WriteFigureSvgsCreatesBothFiles) {
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteFigureSvgs(FakeResult(), "T", dir, "svg_test").ok());
  for (const char* suffix : {"_dispersion.svg", "_evolution.svg"}) {
    std::ifstream in(dir + "/svg_test" + suffix);
    ASSERT_TRUE(in.good()) << suffix;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("</svg>"), std::string::npos) << suffix;
  }
}

TEST(SvgPlotTest, WriteFigureSvgsFailsOnBadDirectory) {
  EXPECT_FALSE(
      WriteFigureSvgs(FakeResult(), "T", "/nonexistent/dir", "x").ok());
}

}  // namespace
}  // namespace experiments
}  // namespace evocat
